package analysis

import (
	"go/ast"
	"go/types"
)

// LockedValueCopyAnalyzer flags functions that pass or return by value any
// struct containing a sync.Mutex, RWMutex, WaitGroup, Once, or Cond.
// Copying a held lock forks its state: the copy is forever unlocked (or
// forever waited-on), which in the parallel encoder shows up as a
// once-in-a-thousand-runs race rather than a failure. go vet's copylocks
// catches assignments; this checker closes the signature-level hole for
// the types trimgrad actually shares across goroutines.
var LockedValueCopyAnalyzer = &Analyzer{
	Name: "locked-value-copy",
	Doc:  "flag functions passing/returning by value structs that contain sync locks",
	Run:  runLockedValueCopy,
}

// lockTypes are the sync types whose zero-value identity must not be
// duplicated by copying.
var lockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
}

func runLockedValueCopy(p *Pass) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			// Variadic params arrive as slices; slices share, not copy.
			if _, ok := field.Type.(*ast.Ellipsis); ok {
				continue
			}
			t := p.Pkg.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if lock := lockIn(t, nil); lock != "" {
				p.Report(field, "%s %s by value copies %s (inside %s); pass a pointer", what, t.String(), lock, t.String())
			}
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(n.Recv, "receiver")
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			}
			return true
		})
	}
}

// lockIn returns the name of a sync lock type reachable by value inside t
// ("" if none). It recurses through named types, struct fields, and
// arrays; pointers, slices, maps, channels, and interfaces share rather
// than copy, so recursion stops there.
func lockIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockIn(t.Underlying(), seen)
	case *types.Alias:
		return lockIn(types.Unalias(t), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lock := lockIn(t.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockIn(t.Elem(), seen)
	}
	return ""
}
