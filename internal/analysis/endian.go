package analysis

import (
	"go/ast"
)

// WireEndiannessAnalyzer forbids mixing binary.BigEndian and
// binary.LittleEndian inside one package. The trimgrad wire format is
// big-endian end to end; a single little-endian field silently decodes to
// garbage on the other side of the wire (lengths, scales) without any
// parse error. A package committed entirely to one byte order is fine —
// mixing is the bug.
var WireEndiannessAnalyzer = &Analyzer{
	Name: "wire-endianness",
	Doc:  "flag packages that mix binary.BigEndian and binary.LittleEndian",
	Run:  runWireEndianness,
}

func runWireEndianness(p *Pass) {
	var big, little []ast.Node
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
				return true
			}
			switch obj.Name() {
			case "BigEndian":
				big = append(big, sel)
			case "LittleEndian":
				little = append(little, sel)
			}
			return true
		})
	}
	if len(big) == 0 || len(little) == 0 {
		return
	}
	// Report the minority order at each use site; on a tie, little-endian
	// is the intruder (the repo's wire format is big-endian).
	minority, name := little, "binary.LittleEndian"
	if len(big) < len(little) {
		minority, name = big, "binary.BigEndian"
	}
	for _, n := range minority {
		p.Report(n, "package %s mixes byte orders: %s here but %d use(s) of the other order; pick one (trimgrad wire format is big-endian)", p.Pkg.Name, name, len(big)+len(little)-len(minority))
	}
}
