package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolOwnershipAnalyzer tracks pooled values — Sim.NewPacket packets,
// wire.Arena payload buffers, internal/par scratch slices — from
// acquisition to a terminal owner, and demands that every value reaches
// exactly one release site on every path. It is a forward value-flow pass
// over each function, made interprocedural by a per-package fixpoint:
// when a tracked value is passed to a package-local function, that
// function's parameter joins the tracked set, its own body is analyzed
// under the ownership obligation, and the call site inherits the result
// (consumed on every path → the caller's obligation is discharged;
// consumed on no path → a borrow, the caller still owns the value).
//
// Flagged: values that leak (no release on some path), double releases,
// uses after a release, and escapes into long-lived storage — struct
// fields, slices, maps, channels, goroutines, captured closures. A
// legitimate hand-off point (the fabric queue, the pooled event record)
// is annotated in source:
//
//	//trimlint:owner transfer <one-line justification>
//
// which converts the escape into an ownership transfer. See DESIGN.md §12
// for the lattice, the summary rules, and the engine's known blind spots.
var PoolOwnershipAnalyzer = &Analyzer{
	Name: "poolownership",
	Doc:  "pooled packets, arena buffers, and par scratch must reach exactly one release on every path; escapes need //trimlint:owner transfer",
	Run:  runPoolOwnership,
}

// funcKey names a function for the spec tables: package name, receiver
// named type ("" for plain functions), function name. Matching is by
// name, not import path, so fixture packages can model the real APIs
// with local declarations.
type funcKey struct {
	pkg, recv, name string
}

// keyFor derives the spec key for a resolved callee.
func keyFor(fn *types.Func) funcKey {
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name()
	}
	return funcKey{pkg: pkgName, recv: recvNamed(fn), name: fn.Name()}
}

// acquireSpecs are the pool acquisition points; calling one yields a
// tracked value with the given origin label.
var acquireSpecs = map[funcKey]string{
	{"netsim", "Sim", "NewPacket"}: "pooled packet (Sim.NewPacket)",
	{"wire", "Arena", "Get"}:       "arena buffer (Arena.Get)",
	// GetStamped is the one multi-valued acquisition: result 0 is the
	// tracked buffer, result 1 its generation stamp (a plain integer).
	{"wire", "Arena", "GetStamped"}: "arena buffer (Arena.GetStamped)",
	{"par", "", "Float32s"}:         "scratch slice (par.Float32s)",
	{"par", "", "Float64s"}:         "scratch slice (par.Float64s)",
	{"par", "", "Bytes"}:            "scratch slice (par.Bytes)",
}

// stampQuerySpecs are the generation-stamp queries of DESIGN.md §16. Each
// may legally be handed a buffer whose ownership has already been
// released — asking "is this stamp still live?" is precisely what a late
// toucher does after the owner may have recycled — so the listed argument
// positions are neither uses (no use-after-release report) nor releases.
var stampQuerySpecs = map[funcKey][]int{
	{"wire", "Arena", "GenOf"}:     {0},
	{"wire", "Arena", "Valid"}:     {0},
	{"wire", "Arena", "AddFlight"}: {0},
	{"wire", "Arena", "EndFlight"}: {0},
	{"wire", "Arena", "Flights"}:   {0},
}

// consumeSpec describes a call that discharges the ownership obligation
// for specific argument positions. Root sinks recycle the memory itself
// (reads afterwards are use-after-release); non-root entries are transfer
// APIs — ownership moves to another subsystem whose rules DESIGN.md §11
// spells out, and benign same-thread reads are tolerated.
type consumeSpec struct {
	args []int
	root bool
}

var consumeSpecs = map[funcKey]consumeSpec{
	{"netsim", "Sim", "releasePacket"}: {args: []int{0}, root: true},
	{"wire", "Arena", "Put"}:           {args: []int{0}, root: true},
	{"wire", "Arena", "PutAll"}:        {args: []int{0}, root: true},
	{"wire", "", "PutPacked"}:          {args: []int{1, 2}, root: true},
	{"par", "", "PutFloat32s"}:         {args: []int{0}, root: true},
	{"par", "", "PutFloat64s"}:         {args: []int{0}, root: true},
	{"par", "", "PutBytes"}:            {args: []int{0}, root: true},
	// Crossing into the fabric transfers ownership: the fabric releases at
	// the packet's terminal point (host delivery or any drop).
	{"netsim", "Host", "Send"}:    {args: []int{0}},
	{"netsim", "Port", "Enqueue"}: {args: []int{0}},
}

// valState is the per-path state of one tracked value.
type valState uint8

const (
	// stLive: acquired, obligation outstanding.
	stLive valState = iota
	// stMaybe: released on some merged-in path but not all.
	stMaybe
	// stDead: released through a root sink; the memory is recycled and any
	// further read is a use-after-release.
	stDead
	// stXfer: ownership transferred (fabric hand-off, annotated escape,
	// consuming callee, returned to the caller). Obligation met; reads
	// tolerated, re-release still flagged where provable.
	stXfer
	// stNil: proven nil on this path; no obligation.
	stNil
)

// released reports whether the obligation is discharged in state s.
func (s valState) released() bool { return s == stDead || s == stXfer || s == stNil }

// cell is one tracked value (an alias class: every variable bound to the
// same underlying value shares the cell). Per-path state lives in env;
// the fields here are cross-path bookkeeping for messages and the final
// per-function verdict.
type cell struct {
	origin  string
	acqNode ast.Node
	relLine int // line of the most recent release (for messages)

	// Parameter cells carry the interprocedural obligation.
	isParam   bool
	paramName string

	anyExitReleased   bool
	anyExitUnreleased bool
	everReleased      bool
}

// cstate is a cell's state on the current path.
type cstate struct {
	st       valState
	deferred bool // a deferred call releases this cell at function exit
}

// env is the walker's per-path abstract state.
type env struct {
	vars  map[*types.Var]*cell
	cells map[*cell]cstate
}

func newEnv() *env {
	return &env{vars: make(map[*types.Var]*cell), cells: make(map[*cell]cstate)}
}

func (e *env) clone() *env {
	c := &env{
		vars:  make(map[*types.Var]*cell, len(e.vars)),
		cells: make(map[*cell]cstate, len(e.cells)),
	}
	for k, v := range e.vars {
		c.vars[k] = v
	}
	for k, v := range e.cells {
		c.cells[k] = v
	}
	return c
}

// merge joins two path states in place (into e). A variable bound to a
// cell on either path keeps the binding, so a later release through that
// name still resolves; the state lattice absorbs the imprecision.
func (e *env) merge(o *env) {
	for v, c := range o.vars {
		if _, ok := e.vars[v]; !ok {
			e.vars[v] = c
		}
	}
	for c, os := range o.cells {
		es, ok := e.cells[c]
		if !ok {
			// Acquired on the other path only: the obligation exists only
			// where the acquisition happened; adopt its state as-is.
			e.cells[c] = os
			continue
		}
		e.cells[c] = cstate{
			st:       mergeState(es.st, os.st),
			deferred: es.deferred && os.deferred,
		}
	}
}

func mergeState(a, b valState) valState {
	if a == b {
		return a
	}
	// nil on one path behaves like whatever the other path says.
	if a == stNil {
		return b
	}
	if b == stNil {
		return a
	}
	// Released-on-both in different senses: keep the lenient transfer.
	if a.released() && b.released() {
		return stXfer
	}
	return stMaybe
}

// runPoolOwnership drives the per-package fixpoint: repeat the value-flow
// pass until the tracked-parameter set and consumption summaries are
// stable, then run once more with reporting on.
func runPoolOwnership(p *Pass) {
	oa := newOwnAnalysis(p.Pkg)
	for i := 0; i < 20; i++ {
		if !oa.iterate(nil) {
			break
		}
	}
	oa.iterate(p)
}

// ownAnalysis is the package-level fixpoint state.
type ownAnalysis struct {
	pkg   *Package
	decls map[*types.Func]*ast.FuncDecl
	order []*types.Func
	// owned[fn][i]: some call site passes a tracked value to fn's i-th
	// parameter, so fn is analyzed under the ownership obligation for it.
	owned map[*types.Func]map[int]bool
	// summary[fn][i]: fn discharges the obligation for parameter i on
	// every path (a consuming callee). Grows monotonically from "borrow".
	summary map[*types.Func]map[int]bool
}

func newOwnAnalysis(pkg *Package) *ownAnalysis {
	oa := &ownAnalysis{
		pkg:     pkg,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		owned:   make(map[*types.Func]map[int]bool),
		summary: make(map[*types.Func]map[int]bool),
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			// Root sinks recycle memory by stuffing values into free
			// lists; their bodies are the trusted boundary of the model,
			// and call sites are intercepted by the spec table, so they
			// are never analyzed under an obligation.
			if spec, isSink := consumeSpecs[keyFor(fn)]; isSink && spec.root {
				continue
			}
			oa.decls[fn] = fd
			oa.order = append(oa.order, fn)
		}
	}
	sort.Slice(oa.order, func(i, j int) bool {
		return oa.decls[oa.order[i]].Pos() < oa.decls[oa.order[j]].Pos()
	})
	return oa
}

// iterate analyzes every declared function once. With a nil pass it only
// updates owned/summary and reports nothing; with a pass it reports.
// Returns whether any interprocedural fact changed.
func (oa *ownAnalysis) iterate(pass *Pass) bool {
	changed := false
	for _, fn := range oa.order {
		w := &ownWalk{
			oa:       oa,
			pass:     pass,
			pkg:      oa.pkg,
			taint:    make(map[*types.Func]map[int]bool),
			reported: make(map[token.Pos]bool),
		}
		consumed := w.analyzeDecl(fn, oa.decls[fn])
		for callee, idxs := range w.taint {
			m := oa.owned[callee]
			if m == nil {
				m = make(map[int]bool)
				oa.owned[callee] = m
			}
			for i := range idxs {
				if !m[i] {
					m[i] = true
					changed = true
				}
			}
		}
		old := oa.summary[fn]
		if !equalIntSet(old, consumed) {
			oa.summary[fn] = consumed
			changed = true
		}
	}
	return changed
}

func intIn(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func equalIntSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// ownWalk analyzes one function (or function literal) body.
type ownWalk struct {
	oa       *ownAnalysis
	pass     *Pass // nil during summary iterations
	pkg      *Package
	cells    []*cell
	taint    map[*types.Func]map[int]bool
	reported map[token.Pos]bool
	// noUse suppresses the use-after-release check while evaluating the
	// consumed arguments of a release call: the double-release diagnostic
	// at the call is the one finding, not a use-after-release too.
	noUse int
}

// analyzeDecl walks fn's body with its owned parameters live and returns
// the set of parameter indices consumed on every path.
func (w *ownWalk) analyzeDecl(fn *types.Func, fd *ast.FuncDecl) map[int]bool {
	e := newEnv()
	sig := fn.Type().(*types.Signature)
	ownedIdx := make([]int, 0, len(w.oa.owned[fn]))
	for i := range w.oa.owned[fn] {
		ownedIdx = append(ownedIdx, i)
	}
	sort.Ints(ownedIdx)
	paramCells := make(map[int]*cell, len(ownedIdx))
	for _, i := range ownedIdx {
		if i >= sig.Params().Len() {
			continue
		}
		v := sig.Params().At(i)
		c := &cell{
			origin:    "pooled value in parameter " + v.Name(),
			acqNode:   fd.Name,
			isParam:   true,
			paramName: v.Name(),
		}
		w.cells = append(w.cells, c)
		e.vars[v] = c
		e.cells[c] = cstate{st: stLive}
		paramCells[i] = c
	}
	if !w.walkBlock(fd.Body, e) {
		w.atExit(e)
	}
	w.finish(fd)

	consumed := make(map[int]bool)
	for i, c := range paramCells {
		if !c.anyExitUnreleased {
			consumed[i] = true
		}
	}
	return consumed
}

// analyzeLit walks a function literal as a fresh scope: its own
// acquisitions carry obligations; captures of outer tracked values were
// already reported as escapes by the enclosing walk.
func (w *ownWalk) analyzeLit(lit *ast.FuncLit) {
	inner := &ownWalk{
		oa:       w.oa,
		pass:     w.pass,
		pkg:      w.pkg,
		taint:    w.taint,
		reported: w.reported,
	}
	e := newEnv()
	if !inner.walkBlock(lit.Body, e) {
		inner.atExit(e)
	}
	inner.finish(lit)
}

// atExit records one path reaching a function exit. A merged "maybe"
// state means released on some incoming path and not on others, so it
// counts as both.
func (w *ownWalk) atExit(e *env) {
	for c, cs := range e.cells {
		switch {
		case cs.deferred || cs.st.released():
			c.anyExitReleased = true
		case cs.st == stMaybe:
			c.anyExitReleased = true
			c.anyExitUnreleased = true
		default:
			c.anyExitUnreleased = true
		}
	}
}

// finish emits the per-cell verdicts after the walk.
func (w *ownWalk) finish(fnNode ast.Node) {
	if w.pass == nil {
		return
	}
	for _, c := range w.cells {
		if c.isParam {
			if c.anyExitReleased && c.anyExitUnreleased {
				w.pass.Report(fnNode, "parameter %s receives pooled values and releases them on some paths but not all; consume on every path or on none", c.paramName)
			}
			continue
		}
		if !c.anyExitUnreleased {
			continue
		}
		if c.everReleased || c.anyExitReleased {
			w.pass.Report(c.acqNode, "%s is released on some paths but not all", c.origin)
		} else {
			w.pass.Report(c.acqNode, "%s is never released, transferred, or returned", c.origin)
		}
	}
}

func (w *ownWalk) report(n ast.Node, format string, args ...interface{}) {
	if w.pass == nil || w.reported[n.Pos()] {
		return
	}
	w.reported[n.Pos()] = true
	w.pass.Report(n, format, args...)
}

func (w *ownWalk) newCell(origin string, n ast.Node, e *env) *cell {
	c := &cell{origin: origin, acqNode: n}
	w.cells = append(w.cells, c)
	e.cells[c] = cstate{st: stLive}
	return c
}

// release discharges c's obligation at n. Root releases recycle memory
// (strict); transfers hand ownership elsewhere (lenient).
func (w *ownWalk) release(c *cell, n ast.Node, root bool, e *env) {
	cs := e.cells[c]
	if cs.st == stNil {
		return // releasing nil is a no-op in every modelled API
	}
	if cs.st == stDead || cs.deferred {
		w.report(n, "%s is released again (previous release at line %d)", c.origin, c.relLine)
		return
	}
	if root {
		cs.st = stDead
	} else {
		cs.st = stXfer
	}
	e.cells[c] = cs
	c.relLine = w.pkg.Fset.Position(n.Pos()).Line
	c.everReleased = true
}

// markDeferred registers a deferred release of c.
func (w *ownWalk) markDeferred(c *cell, n ast.Node, e *env) {
	cs := e.cells[c]
	if cs.st == stDead || cs.deferred {
		w.report(n, "%s is released again (previous release at line %d)", c.origin, c.relLine)
		return
	}
	cs.deferred = true
	e.cells[c] = cs
	c.relLine = w.pkg.Fset.Position(n.Pos()).Line
	c.everReleased = true
}

// escape handles c flowing into long-lived storage at n. An owner
// directive converts it into a transfer; otherwise it is reported. Either
// way the state becomes transferred, so one escape yields one finding,
// not a trailing leak report too.
func (w *ownWalk) escape(c *cell, n ast.Node, what string, e *env) {
	pos := w.pkg.Fset.Position(n.Pos())
	if !w.pkg.ownerTransferAt(pos.Filename, pos.Line) {
		w.report(n, "%s escapes: %s; pooled values must reach exactly one release — annotate a deliberate hand-off with //trimlint:owner transfer <why>", c.origin, what)
	}
	cs := e.cells[c]
	if cs.st == stLive || cs.st == stMaybe {
		cs.st = stXfer
		e.cells[c] = cs
		c.relLine = pos.Line
		c.everReleased = true
	}
}

// eval walks one expression, flagging uses of released values, and
// returns the cell x evaluates to when x is a tracked value.
func (w *ownWalk) eval(x ast.Expr, e *env) *cell {
	switch x := x.(type) {
	case *ast.Ident:
		v, ok := w.pkg.Info.Uses[x].(*types.Var)
		if !ok {
			return nil
		}
		c, ok := e.vars[v]
		if !ok {
			return nil
		}
		if cs := e.cells[c]; cs.st == stDead && w.noUse == 0 {
			w.report(x, "use of %s after release (released at line %d)", c.origin, c.relLine)
		}
		return c
	case *ast.ParenExpr:
		return w.eval(x.X, e)
	case *ast.SliceExpr:
		c := w.eval(x.X, e)
		w.eval(x.Low, e)
		w.eval(x.High, e)
		w.eval(x.Max, e)
		return c // a re-slice aliases the same backing value
	case *ast.CallExpr:
		return w.call(x, e)
	case *ast.SelectorExpr:
		w.eval(x.X, e)
	case *ast.IndexExpr:
		w.eval(x.X, e)
		w.eval(x.Index, e)
	case *ast.IndexListExpr:
		w.eval(x.X, e)
		for _, idx := range x.Indices {
			w.eval(idx, e)
		}
	case *ast.StarExpr:
		w.eval(x.X, e)
	case *ast.UnaryExpr:
		w.eval(x.X, e)
	case *ast.BinaryExpr:
		w.eval(x.X, e)
		w.eval(x.Y, e)
	case *ast.TypeAssertExpr:
		w.eval(x.X, e)
	case *ast.KeyValueExpr:
		w.eval(x.Key, e)
		if c := w.eval(x.Value, e); c != nil {
			w.escape(c, x.Value, "stored in a composite literal", e)
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				w.eval(kv, e)
				continue
			}
			if c := w.eval(elt, e); c != nil {
				w.escape(c, elt, "stored in a composite literal", e)
			}
		}
	case *ast.FuncLit:
		w.captures(x, e)
		w.analyzeLit(x)
	}
	return nil
}

// captures reports tracked outer values referenced inside a function
// literal: the closure may outlive the value's owner.
func (w *ownWalk) captures(lit *ast.FuncLit, e *env) {
	seen := make(map[*cell]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		c, ok := e.vars[v]
		if !ok || seen[c] {
			return true
		}
		seen[c] = true
		w.escape(c, lit, "captured by a closure over "+v.Name(), e)
		return true
	})
}

// call processes one call expression and returns the acquisition cell
// when the call is a pool acquisition.
func (w *ownWalk) call(call *ast.CallExpr, e *env) *cell {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		w.eval(fun.X, e) // method receivers and package qualifiers are uses
	case *ast.Ident:
		if b, ok := w.pkg.Info.Uses[fun].(*types.Builtin); ok {
			return w.builtin(b.Name(), call, e)
		}
	default:
		w.eval(call.Fun, e) // function values, immediately-invoked literals
	}
	callee := calleeFunc(w.pkg, call)
	if callee != nil {
		if origin, ok := acquireSpecs[keyFor(callee)]; ok {
			for _, a := range call.Args {
				w.eval(a, e)
			}
			return w.newCell(origin, call, e)
		}
	}
	// Stamp queries read only the buffer's identity, never its bytes:
	// evaluate the queried positions with the use-after-release check off
	// and leave every ownership state untouched.
	var queryArgs []int
	if callee != nil {
		queryArgs = stampQuerySpecs[keyFor(callee)]
	}
	// Root sinks always consume. Transfer APIs consume at call sites
	// outside the callee's package; inside it, the callee's own body is
	// in view and the summary path below verifies it instead.
	var spec consumeSpec
	specApplies := false
	if callee != nil {
		if sp, ok := consumeSpecs[keyFor(callee)]; ok && (sp.root || w.oa.decls[callee] == nil) {
			spec, specApplies = sp, true
		}
	}
	cells := make([]*cell, len(call.Args))
	for i, a := range call.Args {
		if (specApplies && intIn(spec.args, i)) || intIn(queryArgs, i) {
			w.noUse++
			cells[i] = w.eval(a, e)
			w.noUse--
			continue
		}
		cells[i] = w.eval(a, e)
	}
	if len(queryArgs) > 0 {
		return nil // a stamp query neither consumes nor taints its arguments
	}
	if callee == nil {
		return nil // unresolvable call: every tracked argument is a borrow
	}
	if specApplies {
		for _, i := range spec.args {
			if i < len(cells) && cells[i] != nil {
				w.release(cells[i], call, spec.root, e)
			}
		}
		return nil
	}
	if w.oa.decls[callee] != nil {
		sig := callee.Type().(*types.Signature)
		for i, c := range cells {
			if c == nil {
				continue
			}
			if sig.Variadic() && i >= sig.Params().Len()-1 {
				continue // variadic positions are borrows
			}
			if i >= sig.Params().Len() {
				continue
			}
			m := w.taint[callee]
			if m == nil {
				m = make(map[int]bool)
				w.taint[callee] = m
			}
			m[i] = true
			if w.oa.summary[callee][i] {
				w.release(c, call, false, e)
			}
		}
	}
	return nil
}

// builtin models the builtins that matter for ownership.
func (w *ownWalk) builtin(name string, call *ast.CallExpr, e *env) *cell {
	switch name {
	case "append":
		// append(s, tracked) stores the value in a slice; the result of
		// append(trackedBuf, ...) is treated as the same alias class.
		var first *cell
		for i, a := range call.Args {
			c := w.eval(a, e)
			if i == 0 {
				first = c
				continue
			}
			if c != nil {
				w.escape(c, a, "appended to a slice", e)
			}
		}
		return first
	default:
		for _, a := range call.Args {
			w.eval(a, e)
		}
		return nil
	}
}

// walkBlock walks a statement list; true means every path terminated.
func (w *ownWalk) walkBlock(b *ast.BlockStmt, e *env) bool {
	if b == nil {
		return false
	}
	return w.walkStmts(b.List, e)
}

func (w *ownWalk) walkStmts(list []ast.Stmt, e *env) bool {
	for _, s := range list {
		if w.walkStmt(s, e) {
			return true
		}
	}
	return false
}

// walkStmt interprets one statement; true means the path terminated
// (return, panic, or a branch treated conservatively as an exit from the
// structured walk).
func (w *ownWalk) walkStmt(s ast.Stmt, e *env) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if c := w.call(call, e); c != nil {
				// Acquisition whose result is discarded: the anonymous
				// cell stays live and surfaces as a leak at exit.
				_ = c
			}
			if isPanicCall(w.pkg, call) {
				return true
			}
			return false
		}
		w.eval(s.X, e)
	case *ast.AssignStmt:
		w.assign(s, e)
	case *ast.DeclStmt:
		w.declStmt(s, e)
	case *ast.IncDecStmt:
		w.eval(s.X, e)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c := w.eval(r, e); c != nil {
				// Returning a tracked value transfers it to the caller.
				w.release(c, r, false, e)
			}
		}
		w.atExit(e)
		return true
	case *ast.DeferStmt:
		w.deferStmt(s, e)
	case *ast.GoStmt:
		w.goStmt(s, e)
	case *ast.SendStmt:
		w.eval(s.Chan, e)
		if c := w.eval(s.Value, e); c != nil {
			w.escape(c, s.Value, "sent on a channel", e)
		}
	case *ast.IfStmt:
		return w.ifStmt(s, e)
	case *ast.SwitchStmt:
		return w.switchStmt(s, e)
	case *ast.TypeSwitchStmt:
		return w.typeSwitchStmt(s, e)
	case *ast.SelectStmt:
		return w.selectStmt(s, e)
	case *ast.ForStmt:
		w.forStmt(s, e)
	case *ast.RangeStmt:
		w.rangeStmt(s, e)
	case *ast.BlockStmt:
		return w.walkBlock(s, e)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, e)
	case *ast.BranchStmt:
		// break/continue/goto leave the structured walk; treating the
		// path as terminated is conservative for leak detection.
		return true
	}
	return false
}

func isPanicCall(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func (w *ownWalk) assign(s *ast.AssignStmt, e *env) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple assignment. GetStamped is the one multi-valued acquisition:
		// its tracked buffer is result 0 (the stamp in result 1 is a plain
		// integer); every other tuple RHS leaves all targets untracked.
		c := w.eval(s.Rhs[0], e)
		for i, l := range s.Lhs {
			if i == 0 {
				w.bindLHS(l, c, s, e)
				continue
			}
			w.bindLHS(l, nil, s, e)
		}
		return
	}
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Compound assignment (+=, |=, ...): numeric, plain uses.
		for _, l := range s.Lhs {
			w.eval(l, e)
		}
		for _, r := range s.Rhs {
			w.eval(r, e)
		}
		return
	}
	cells := make([]*cell, len(s.Rhs))
	for i, r := range s.Rhs {
		cells[i] = w.eval(r, e)
	}
	for i, l := range s.Lhs {
		w.bindLHS(l, cells[i], s, e)
	}
}

// bindLHS applies one assignment target. A plain identifier rebinds the
// variable; any other target is a store, which escapes a tracked RHS.
func (w *ownWalk) bindLHS(l ast.Expr, c *cell, at ast.Stmt, e *env) {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		var v *types.Var
		if def, ok := w.pkg.Info.Defs[id].(*types.Var); ok {
			v = def
		} else if use, ok := w.pkg.Info.Uses[id].(*types.Var); ok {
			v = use
		}
		if v == nil {
			return
		}
		if c != nil {
			e.vars[v] = c
		} else {
			delete(e.vars, v)
		}
		return
	}
	w.eval(l, e)
	if c != nil {
		w.escape(c, at, "stored into a field, element, or global", e)
	}
}

func (w *ownWalk) declStmt(s *ast.DeclStmt, e *env) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			w.eval(vs.Values[0], e)
			continue
		}
		for i, name := range vs.Names {
			var c *cell
			if i < len(vs.Values) {
				c = w.eval(vs.Values[i], e)
			}
			if v, ok := w.pkg.Info.Defs[name].(*types.Var); ok && c != nil {
				e.vars[v] = c
			}
		}
	}
}

func (w *ownWalk) deferStmt(s *ast.DeferStmt, e *env) {
	call := s.Call
	if callee := calleeFunc(w.pkg, call); callee != nil {
		if spec, ok := consumeSpecs[keyFor(callee)]; ok && (spec.root || w.oa.decls[callee] == nil) {
			if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				w.eval(fun.X, e)
			}
			cells := make([]*cell, len(call.Args))
			for i, a := range call.Args {
				if intIn(spec.args, i) {
					w.noUse++
					cells[i] = w.eval(a, e)
					w.noUse--
					continue
				}
				cells[i] = w.eval(a, e)
			}
			for _, i := range spec.args {
				if i < len(cells) && cells[i] != nil {
					w.markDeferred(cells[i], call, e)
				}
			}
			return
		}
	}
	w.eval(call.Fun, e)
	for _, a := range call.Args {
		if c := w.eval(a, e); c != nil {
			// A deferred non-release call holding a tracked value is a
			// borrow until exit; harmless for this model.
			_ = c
		}
	}
}

func (w *ownWalk) goStmt(s *ast.GoStmt, e *env) {
	call := s.Call
	w.eval(call.Fun, e) // FuncLit capture checks included
	for _, a := range call.Args {
		if c := w.eval(a, e); c != nil {
			w.escape(c, a, "handed to a goroutine", e)
		}
	}
}

// nilFact recognizes `v == nil` / `v != nil` over a tracked variable.
func (w *ownWalk) nilFact(cond ast.Expr, e *env) (c *cell, nilWhenTrue bool, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	operand := func(x ast.Expr) *cell {
		id, isIdent := ast.Unparen(x).(*ast.Ident)
		if !isIdent {
			return nil
		}
		v, isVar := w.pkg.Info.Uses[id].(*types.Var)
		if !isVar {
			return nil
		}
		return e.vars[v]
	}
	isNil := func(x ast.Expr) bool {
		id, isIdent := ast.Unparen(x).(*ast.Ident)
		return isIdent && id.Name == "nil"
	}
	switch {
	case isNil(be.Y):
		c = operand(be.X)
	case isNil(be.X):
		c = operand(be.Y)
	}
	if c == nil {
		return nil, false, false
	}
	return c, be.Op == token.EQL, true
}

func setNil(c *cell, e *env) {
	cs := e.cells[c]
	if cs.st == stLive || cs.st == stMaybe {
		cs.st = stNil
		e.cells[c] = cs
	}
}

// validFact recognizes `arena.Valid(buf, gen)` over a tracked buffer —
// the §16 guard a late toucher runs before reading a possibly-recycled
// payload.
func (w *ownWalk) validFact(cond ast.Expr, e *env) *cell {
	call, ok := ast.Unparen(cond).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	callee := calleeFunc(w.pkg, call)
	if callee == nil {
		return nil
	}
	if k := keyFor(callee); k.pkg != "wire" || k.recv != "Arena" || k.name != "Valid" {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := w.pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	return e.vars[v]
}

// resurrect tolerates reads of a released buffer inside a Valid-guarded
// branch: the generation check just proved the buffer has not been
// recycled, so the stamped-release idiom may keep reading it there.
func resurrect(c *cell, e *env) {
	cs := e.cells[c]
	if cs.st == stDead || cs.st == stMaybe {
		cs.st = stXfer
		e.cells[c] = cs
	}
}

func (w *ownWalk) ifStmt(s *ast.IfStmt, e *env) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, e)
	}
	factCell, nilWhenTrue, hasFact := w.nilFact(s.Cond, e)
	validCell := w.validFact(s.Cond, e)
	w.eval(s.Cond, e)

	thenEnv := e.clone()
	elseEnv := e.clone()
	if hasFact {
		if nilWhenTrue {
			setNil(factCell, thenEnv)
		} else {
			setNil(factCell, elseEnv)
		}
	}
	if validCell != nil {
		resurrect(validCell, thenEnv)
	}
	termThen := w.walkBlock(s.Body, thenEnv)
	termElse := false
	if s.Else != nil {
		termElse = w.walkStmt(s.Else, elseEnv)
	}
	switch {
	case termThen && termElse:
		return true
	case termThen:
		*e = *elseEnv
	case termElse:
		*e = *thenEnv
	default:
		thenEnv.merge(elseEnv)
		*e = *thenEnv
	}
	return false
}

func (w *ownWalk) switchStmt(s *ast.SwitchStmt, e *env) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, e)
	}
	w.eval(s.Tag, e)
	return w.caseClauses(s.Body.List, e, func(cc *ast.CaseClause, ce *env) {
		for _, x := range cc.List {
			w.eval(x, ce)
		}
	})
}

func (w *ownWalk) typeSwitchStmt(s *ast.TypeSwitchStmt, e *env) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, e)
	}
	if s.Assign != nil {
		w.walkStmt(s.Assign, e)
	}
	return w.caseClauses(s.Body.List, e, nil)
}

// caseClauses walks each clause from a snapshot of e and merges the
// non-terminated results (plus the fall-past state when no default
// clause exists).
func (w *ownWalk) caseClauses(list []ast.Stmt, e *env, evalCase func(*ast.CaseClause, *env)) bool {
	var outs []*env
	hasDefault := false
	for _, stmt := range list {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		ce := e.clone()
		if evalCase != nil {
			evalCase(cc, ce)
		}
		if !w.walkStmts(cc.Body, ce) {
			outs = append(outs, ce)
		}
	}
	if !hasDefault {
		outs = append(outs, e.clone())
	}
	if len(outs) == 0 {
		return true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged.merge(o)
	}
	*e = *merged
	return false
}

func (w *ownWalk) selectStmt(s *ast.SelectStmt, e *env) bool {
	var outs []*env
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CommClause)
		if !ok {
			continue
		}
		ce := e.clone()
		if cc.Comm != nil {
			w.walkStmt(cc.Comm, ce)
		}
		if !w.walkStmts(cc.Body, ce) {
			outs = append(outs, ce)
		}
	}
	if len(outs) == 0 {
		return true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged.merge(o)
	}
	*e = *merged
	return false
}

// forStmt approximates a loop by one body pass merged with the zero-pass
// state: a release inside the body degrades to "some paths".
func (w *ownWalk) forStmt(s *ast.ForStmt, e *env) {
	if s.Init != nil {
		w.walkStmt(s.Init, e)
	}
	w.eval(s.Cond, e)
	body := e.clone()
	if !w.walkBlock(s.Body, body) {
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		e.merge(body)
	}
}

func (w *ownWalk) rangeStmt(s *ast.RangeStmt, e *env) {
	w.eval(s.X, e)
	body := e.clone()
	if !w.walkBlock(s.Body, body) {
		e.merge(body)
	}
}
