// Package analysis implements trimlint, trimgrad's in-tree static-analysis
// pass. The invariants that make packet trimming correct are invisible to
// the Go compiler: sender and receiver must derive bit-identical shared
// randomness keyed by (epoch, msgID, row), the discrete-event simulator
// must replay identically, and the wire codec must never mix endianness or
// swallow decode errors. trimlint turns those comment-only contracts into
// machine-checked ones.
//
// The package is pure standard library (go/parser, go/ast, go/token,
// go/types); it deliberately avoids golang.org/x/tools so the repository
// stays dependency-free. Checkers are registered as Analyzers and run over
// type-checked packages loaded by LoadModule (the real tree) or LoadDir
// (fixture self-tests).
//
// Findings can be suppressed line-by-line with a directive comment:
//
//	//trimlint:allow <check>[,<check>...] <one-line justification>
//
// The directive suppresses matching diagnostics on its own line and on the
// line directly below it, so it works both as an end-of-line comment and as
// a standalone comment above the offending statement. The justification is
// mandatory: a bare directive is itself reported (check "directive"), as is
// a directive naming an unknown check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the checker in output, flags, and allow directives.
	Name string
	// Doc is a one-line description shown by `trimlint -list`.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass)
}

// A Diagnostic is a single finding.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Check string
	Pkg   *Package
	diags *[]Diagnostic
}

// Report records a finding at n's position unless an allow directive
// suppresses it.
func (p *Pass) Report(n ast.Node, format string, args ...interface{}) {
	pos := p.Pkg.Fset.Position(n.Pos())
	if p.Pkg.allowed(pos.Filename, pos.Line, p.Check) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Check,
		Pos:     pos,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full checker suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		SwallowedErrorAnalyzer,
		FloatEqualityAnalyzer,
		WireEndiannessAnalyzer,
		LockedValueCopyAnalyzer,
		WallClockAnalyzer,
		PoolOwnershipAnalyzer,
		GoroutineBoundAnalyzer,
		ObsHotPathAnalyzer,
	}
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over every package and returns the surviving
// diagnostics sorted by position. Directive-syntax problems (missing
// justification, unknown check name) are appended under the pseudo-check
// "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.parseDirectives(known)...)
		for _, a := range analyzers {
			a.Run(&Pass{Check: a.Name, Pkg: pkg, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// directivePrefix introduces an allow directive comment.
const directivePrefix = "trimlint:allow"

// ownerPrefix introduces an ownership directive comment:
//
//	//trimlint:owner transfer <one-line justification>
//
// It marks a deliberate ownership hand-off point for the poolownership
// checker: the store or capture on its line (or the line directly below)
// transfers the pooled value to another owner instead of escaping it.
const ownerPrefix = "trimlint:owner"

// parseDirectives scans the package's comments for //trimlint:allow and
// //trimlint:owner directives, populating pkg.allow / pkg.ownerXfer and
// returning diagnostics for malformed ones. It is idempotent.
func (pkg *Package) parseDirectives(known map[string]bool) []Diagnostic {
	if pkg.allow != nil {
		return pkg.directiveDiags
	}
	pkg.allow = make(map[string]map[int][]string)
	pkg.ownerXfer = make(map[string]map[int]bool)
	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Check:   "directive",
			Pos:     pos,
			File:    pos.Filename,
			Line:    pos.Line,
			Col:     pos.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if strings.HasPrefix(text, ownerPrefix) {
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, ownerPrefix))
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0 || fields[0] != "transfer":
						report(pos, "trimlint:owner directive must read `owner transfer <justification>`")
					case len(fields) < 2:
						report(pos, "trimlint:owner transfer lacks a justification; say who the new owner is")
					default:
						byLine := pkg.ownerXfer[pos.Filename]
						if byLine == nil {
							byLine = make(map[int]bool)
							pkg.ownerXfer[pos.Filename] = byLine
						}
						byLine[pos.Line] = true
					}
					continue
				}
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "trimlint:allow directive names no check")
					continue
				}
				checks := strings.Split(fields[0], ",")
				bad := false
				for _, ch := range checks {
					if ch != "all" && !known[ch] {
						report(pos, "trimlint:allow names unknown check %q", ch)
						bad = true
					}
				}
				if bad {
					continue
				}
				if len(fields) < 2 {
					report(pos, "trimlint:allow %s lacks a justification; say why the exception is safe", fields[0])
					continue
				}
				byLine := pkg.allow[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					pkg.allow[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], checks...)
			}
		}
	}
	pkg.directiveDiags = diags
	return diags
}

// allowed reports whether check is suppressed at file:line: a directive on
// the same line (end-of-line comment) or the line above (standalone
// comment) matches.
func (pkg *Package) allowed(file string, line int, check string) bool {
	byLine := pkg.allow[file]
	if byLine == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		for _, ch := range byLine[l] {
			if ch == check || ch == "all" {
				return true
			}
		}
	}
	return false
}

// ownerTransferAt reports whether a //trimlint:owner transfer directive
// covers file:line (same coverage rule as allow: the directive's own line
// for end-of-line comments, or the line directly above).
func (pkg *Package) ownerTransferAt(file string, line int) bool {
	byLine := pkg.ownerXfer[file]
	if byLine == nil {
		return false
	}
	return byLine[line] || byLine[line-1]
}
