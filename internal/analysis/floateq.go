package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqualityAnalyzer flags exact ==/!= between floating-point values.
// Quantize/dequantize round-trips, FWHT rotations, and error-feedback
// accumulation all introduce rounding, so exact comparison of computed
// floats is almost always a latent bug; tolerance helpers (vecmath.NMSE
// and friends) or an explicit annotation are the sanctioned forms.
// Comparisons against compile-time constants (x == 0 sentinel checks) are
// allowed: they test an exact bit pattern on purpose.
var FloatEqualityAnalyzer = &Analyzer{
	Name: "float-equality",
	Doc:  "flag exact ==/!= between computed floating-point values",
	Run:  runFloatEquality,
}

func runFloatEquality(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tvX, okX := p.Pkg.Info.Types[be.X]
			tvY, okY := p.Pkg.Info.Types[be.Y]
			if !okX || !okY {
				return true
			}
			// A constant operand means a deliberate sentinel comparison.
			if tvX.Value != nil || tvY.Value != nil {
				return true
			}
			if isFloat(tvX.Type) || isFloat(tvY.Type) {
				p.Report(be, "exact floating-point %s comparison; quantization round-trips make this fragile — compare with a tolerance or annotate //trimlint:allow float-equality", be.Op)
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is float32/float64.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
