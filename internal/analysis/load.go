package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("trimgrad/internal/core").
	Path string
	// Rel is the module-relative directory ("internal/core", "" for root).
	Rel string
	// Name is the package name from the source.
	Name string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allow          map[string]map[int][]string
	ownerXfer      map[string]map[int]bool
	directiveDiags []Diagnostic
}

// TypeOf is a nil-tolerant shorthand for Info.TypeOf.
func (pkg *Package) TypeOf(e ast.Expr) types.Type { return pkg.Info.TypeOf(e) }

// newInfo allocates the types.Info maps every checker relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// stdImporter type-checks standard-library dependencies from source, so
// trimlint needs no compiled export data and no external tooling.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// moduleImporter resolves module-internal import paths from the already
// type-checked set and defers everything else to the stdlib importer.
type moduleImporter struct {
	mod map[string]*types.Package
	std types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.mod[path]; ok {
		return p, nil
	}
	return im.std.Import(path)
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("trimlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("trimlint: no module line in %s/go.mod", root)
}

// skipDir reports whether a directory subtree is never analyzed.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "scripts" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadModule parses and type-checks every package under the module rooted
// at root whose module-relative path matches one of patterns, plus (for
// import resolution) everything they depend on. Test files are not loaded:
// trimlint checks shipped code, and tests legitimately use timing,
// tolerance tricks, and discarded errors.
//
// Patterns use the familiar go-tool shapes, relative to the module root:
// "./..." (everything), "./internal/...", "./internal/core". LoadModule
// returns only the matched packages.
func LoadModule(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}

	// Discover every package directory in the module.
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse everything up front so the import graph is known.
	fset := token.NewFileSet()
	type parsed struct {
		pkg     *Package
		imports []string
	}
	byPath := make(map[string]*parsed)
	var order []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			rel = ""
		}
		ip := modPath
		if rel != "" {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, imports, err := parseDir(fset, dir, ip, rel)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		byPath[ip] = &parsed{pkg: pkg, imports: imports}
		order = append(order, ip)
	}

	// Topologically sort by module-internal imports so dependencies
	// type-check first.
	sorted := make([]string, 0, len(order))
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("trimlint: import cycle through %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		for _, dep := range byPath[ip].imports {
			if _, ok := byPath[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[ip] = 2
		sorted = append(sorted, ip)
		return nil
	}
	for _, ip := range order {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}

	im := &moduleImporter{mod: make(map[string]*types.Package), std: stdImporter(fset)}
	for _, ip := range sorted {
		p := byPath[ip]
		if err := typeCheck(p.pkg, im); err != nil {
			return nil, err
		}
		im.mod[ip] = p.pkg.Types
	}

	var out []*Package
	for _, ip := range order {
		p := byPath[ip]
		if matchAny(patterns, p.pkg.Rel) {
			out = append(out, p.pkg)
		}
	}
	return out, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. It is the fixture-test entry point; fixtures may only
// import the standard library.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	pkg, _, err := parseDir(fset, dir, importPath, filepath.Base(dir))
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("trimlint: no Go source files in %s", dir)
	}
	im := &moduleImporter{mod: nil, std: stdImporter(fset)}
	if err := typeCheck(pkg, im); err != nil {
		return nil, err
	}
	return pkg, nil
}

// isSourceFile reports whether name is a non-test Go source file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// parseDir parses dir's non-test Go files as one package. It returns
// (nil, nil, nil) when the directory holds no Go source.
func parseDir(fset *token.FileSet, dir, importPath, rel string) (*Package, []string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	importSet := make(map[string]bool)
	name := ""
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, nil, fmt.Errorf("trimlint: %s: package %s and %s in one directory", dir, name, f.Name.Name)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, nil, err
			}
			importSet[ip] = true
		}
	}
	if len(files) == 0 {
		return nil, nil, nil
	}
	imports := make([]string, 0, len(importSet))
	for ip := range importSet {
		imports = append(imports, ip)
	}
	sort.Strings(imports)
	return &Package{
		Path:  importPath,
		Rel:   rel,
		Name:  name,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Info:  newInfo(),
	}, imports, nil
}

// typeCheck runs go/types over pkg in place.
func typeCheck(pkg *Package, im types.Importer) error {
	var errs []string
	conf := types.Config{
		Importer: im,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err.Error())
			}
		},
	}
	tpkg, err := conf.Check(pkg.Path, pkg.Fset, pkg.Files, pkg.Info)
	if len(errs) > 0 {
		return fmt.Errorf("trimlint: type errors in %s:\n  %s", pkg.Path, strings.Join(errs, "\n  "))
	}
	if err != nil {
		return fmt.Errorf("trimlint: %s: %v", pkg.Path, err)
	}
	pkg.Types = tpkg
	return nil
}

// matchAny reports whether the module-relative path rel matches any
// pattern. An empty pattern list matches everything.
func matchAny(patterns []string, rel string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if matchPattern(pat, rel) {
			return true
		}
	}
	return false
}

// matchPattern implements the "./..."-style matching of the go tool over
// module-relative paths.
func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	rel = filepath.ToSlash(rel)
	if pat == "..." || pat == "" || pat == "." {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	return rel == pat
}
