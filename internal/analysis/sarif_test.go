package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSarifGolden pins the `trimlint -json` SARIF schema: field names,
// nesting, the rule table, and root-relative URI rewriting. Regenerate
// with UPDATE_GOLDEN=1 after a deliberate schema change.
func TestSarifGolden(t *testing.T) {
	diags := []Diagnostic{
		{
			Check:   "poolownership",
			File:    filepath.Join(string(filepath.Separator)+"mod", "internal", "netsim", "network.go"),
			Line:    293,
			Col:     40,
			Message: "pooled value in parameter pkt escapes: appended to a slice",
		},
		{
			Check:   "directive",
			File:    filepath.Join(string(filepath.Separator)+"mod", "internal", "wire", "arena.go"),
			Line:    7,
			Col:     1,
			Message: "trimlint:allow directive names no check",
		},
	}
	log := ToSarif(string(filepath.Separator)+"mod", diags)
	got, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "golden", "sarif.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("SARIF output drifted from golden file %s\ngot:\n%s\nwant:\n%s\n(regenerate with UPDATE_GOLDEN=1 if the change is deliberate)", golden, got, want)
	}
}

// TestSarifRuleIndex checks that every result's ruleIndex points at its
// own rule, whatever the table order.
func TestSarifRuleIndex(t *testing.T) {
	diags := []Diagnostic{{Check: "wallclock", File: "x.go", Line: 1, Col: 1, Message: "m"}}
	log := ToSarif("", diags)
	run := log.Runs[0]
	for _, res := range run.Results {
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("result ruleIndex %d points at %q, want %q",
				res.RuleIndex, run.Tool.Driver.Rules[res.RuleIndex].ID, res.RuleID)
		}
	}
}
