package analysis

import (
	"go/ast"
	"go/types"
)

// SwallowedErrorAnalyzer flags discarded errors on the codec and transport
// APIs. A quantization or framing bug that surfaces as a decode error and
// is then thrown away does not crash anything — it just makes convergence
// slightly worse, which is the most expensive kind of bug to find. Every
// Handle/Encode/Decode/Reconstruct/Send error must be checked, counted, or
// explicitly annotated.
var SwallowedErrorAnalyzer = &Analyzer{
	Name: "swallowed-error",
	Doc:  "flag discarded errors from codec/transport calls (Handle, Encode, Decode, Reconstruct, send paths)",
	Run:  runSwallowedError,
}

// watchedCalls are the method/function names whose errors must never be
// silently dropped: the row codec surface, packet assembly, and the
// transport send paths.
var watchedCalls = map[string]bool{
	"Handle":         true,
	"Reconstruct":    true,
	"Encode":         true,
	"EncodeParallel": true,
	"Decode":         true,
	"Send":           true,
	"SendReliable":   true,
	"SendTrimmable":  true,
	"AddMeta":        true,
	"AddData":        true,
	"Assemble":       true,
	"PackRow":        true,
}

func runSwallowedError(p *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, name, sig := watchedCall(p, n.Rhs[0])
				if sig == nil {
					return true
				}
				res := sig.Results()
				if res.Len() != len(n.Lhs) {
					return true
				}
				for i := 0; i < res.Len(); i++ {
					if !types.Identical(res.At(i).Type(), errType) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						p.Report(call, "error from %s is discarded; check it, count it in stats, or annotate //trimlint:allow swallowed-error", name)
					}
				}
			case *ast.ExprStmt:
				call, name, sig := watchedCall(p, n.X)
				if sig == nil {
					return true
				}
				res := sig.Results()
				for i := 0; i < res.Len(); i++ {
					if types.Identical(res.At(i).Type(), errType) {
						p.Report(call, "error from %s is silently dropped by using the call as a statement", name)
						break
					}
				}
			}
			return true
		})
	}
}

// watchedCall returns (call, callee name, signature) when e is a call of a
// watched codec/transport function, and nils otherwise.
func watchedCall(p *Pass, e ast.Expr) (*ast.CallExpr, string, *types.Signature) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", nil
	}
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return nil, "", nil
	}
	if !watchedCalls[name] {
		return nil, "", nil
	}
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil, "", nil // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil, "", nil
	}
	return call, name, sig
}
