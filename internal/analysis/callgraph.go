package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// callGraph is a per-package static call graph. Nodes are the package's
// declared functions and methods; edges are direct calls plus a
// class-hierarchy-style expansion of interface method calls: a call
// through an interface method declared in this package is assumed to
// reach every same-package concrete method with that name. That is
// deliberately over-approximate — reachability clients (obshotpath) want
// "could run on this path", never "definitely runs".
//
// Function-valued calls (closures stored in fields, callbacks like
// Host.Handler) produce no edges; the engine's checkers treat them as
// opaque. See DESIGN.md §12 for the resulting blind spots.
type callGraph struct {
	pkg *Package
	// nodes maps every declared *types.Func (with a body) to its info.
	nodes map[*types.Func]*cgNode
}

// cgNode is one declared function plus its outgoing edges.
type cgNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	callees []*types.Func // deduplicated, position-ordered
}

// buildCallGraph constructs the call graph for one package.
func buildCallGraph(pkg *Package) *callGraph {
	cg := &callGraph{pkg: pkg, nodes: make(map[*types.Func]*cgNode)}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.nodes[fn] = &cgNode{fn: fn, decl: fd}
		}
	}
	// Index concrete methods by name for interface-call expansion.
	methodsByName := make(map[string][]*types.Func)
	for fn := range cg.nodes {
		if recvNamed(fn) != "" {
			methodsByName[fn.Name()] = append(methodsByName[fn.Name()], fn)
		}
	}
	for _, node := range cg.nodes {
		seen := make(map[*types.Func]bool)
		add := func(fn *types.Func) {
			if fn != nil && !seen[fn] {
				seen[fn] = true
				node.callees = append(node.callees, fn)
			}
		}
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg, call)
			if callee == nil {
				return true
			}
			if isInterfaceMethod(callee) {
				// Expand to every same-package concrete method with the
				// same name (CHA without implements-filtering: cheap and
				// monotone toward over-approximation).
				for _, m := range methodsByName[callee.Name()] {
					add(m)
				}
				return true
			}
			if _, declared := cg.nodes[callee]; declared {
				add(callee)
			}
			return true
		})
		sort.Slice(node.callees, func(i, j int) bool {
			return node.callees[i].Pos() < node.callees[j].Pos()
		})
	}
	return cg
}

// reachableFrom returns the set of declared functions reachable from any
// of the roots, including the roots themselves.
func (cg *callGraph) reachableFrom(roots []*types.Func) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, r := range roots {
		if !reach[r] {
			reach[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := cg.nodes[fn]
		if node == nil {
			continue
		}
		for _, c := range node.callees {
			if !reach[c] {
				reach[c] = true
				queue = append(queue, c)
			}
		}
	}
	return reach
}

// sortedNodes returns the graph's nodes in source order, so every client
// iterates deterministically.
func (cg *callGraph) sortedNodes() []*cgNode {
	out := make([]*cgNode, 0, len(cg.nodes))
	for _, n := range cg.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and function-valued calls.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// recvNamed returns the name of fn's receiver's named type ("" for plain
// functions and for receivers that are not named types).
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// kindSwitchRoots returns the package's dispatch roots: every declared
// function whose body switches over a locally declared `...Kind` enum (the
// pooled typed-event pattern of netsim's timer wheel). These are the entry
// points of the per-event hot path.
func kindSwitchRoots(cg *callGraph) []*types.Func {
	var roots []*types.Func
	for _, node := range cg.sortedNodes() {
		found := false
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := cg.pkg.TypeOf(sw.Tag)
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == cg.pkg.Types && strings.HasSuffix(obj.Name(), "Kind") {
				found = true
				return false
			}
			return true
		})
		if found {
			roots = append(roots, node.fn)
		}
	}
	return roots
}
