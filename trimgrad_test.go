package trimgrad

import (
	"testing"

	"trimgrad/internal/vecmath"
	"trimgrad/internal/xrand"
)

// TestPublicAPIRoundTrip drives the facade exactly as the package comment
// advertises.
func TestPublicAPIRoundTrip(t *testing.T) {
	rng := xrand.New(5)
	grad := make([]float32, 5000)
	for i := range grad {
		grad[i] = float32(rng.NormFloat64() * 0.05)
	}
	for _, scheme := range []Scheme{Sign, SQ, SD, RHT} {
		cfg := Config{Params: Params{Scheme: scheme}, RowSize: 1 << 11}
		enc, err := NewEncoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		msg, err := enc.Encode(1, 9, grad)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(cfg, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msg.Meta {
			if err := dec.Handle(m); err != nil {
				t.Fatal(err)
			}
		}
		inj := NewTrimmer(0.5, 7)
		for _, d := range msg.Data {
			if err := dec.Handle(inj.Apply(append([]byte(nil), d...))); err != nil {
				t.Fatal(err)
			}
		}
		out, stats, err := dec.Reconstruct(len(grad))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(grad) {
			t.Fatalf("%v: length %d", scheme, len(out))
		}
		if stats.TrimmedPackets == 0 {
			t.Errorf("%v: expected some trimming at 50%%", scheme)
		}
		if cos := vecmath.CosineSimilarity(grad, out); cos < 0.3 {
			t.Errorf("%v: cosine %v", scheme, cos)
		}
	}
}

func TestPublicTrimAndDrop(t *testing.T) {
	cfg := Config{Params: Params{Scheme: RHT}, RowSize: 1 << 10}
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grad := make([]float32, 2048)
	for i := range grad {
		grad[i] = float32(i%7) * 0.01
	}
	msg, err := enc.Encode(1, 1, grad)
	if err != nil {
		t.Fatal(err)
	}
	// Switch-side Trim is exposed directly.
	pkt := append([]byte(nil), msg.Data[0]...)
	trimmed := Trim(pkt, 0)
	if len(trimmed) >= len(msg.Data[0]) {
		t.Error("Trim did not shrink the packet")
	}
	// Dropper drops everything at rate 1.
	drop := NewDropper(1, 1)
	if drop.Apply(msg.Data[0]) != nil {
		t.Error("Dropper at rate 1 should drop")
	}
	// NewCodec exposes the row-level API.
	c, err := NewCodec(Params{Scheme: SQ})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "sq" {
		t.Errorf("codec name %q", c.Name())
	}
}
