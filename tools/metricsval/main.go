// Command metricsval validates a telemetry export produced by the obs
// JSONL exporter (`trimbench -metrics`, `trainsim -metrics`, `netsim
// -metrics`). It is the schema contract check scripts/check.sh runs
// against a real export: every line must be one well-formed record of a
// known kind, histograms must be internally consistent, and spans must
// not end before they start. Exit status 0 means the file is valid;
// diagnostics go to stderr with 1-based line numbers.
//
// Usage:
//
//	metricsval <file.jsonl> [more.jsonl ...]
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// record is the superset of the exporter's line shapes; kind dispatches
// which fields are meaningful.
type record struct {
	Kind   string   `json:"kind"`
	Name   string   `json:"name"`
	Value  *int64   `json:"value"`
	Bounds []int64  `json:"bounds"`
	Counts []int64  `json:"counts"`
	Count  int64    `json:"count"`
	Sum    int64    `json:"sum"`
	P50    int64    `json:"p50"`
	P99    int64    `json:"p99"`
	Start  int64    `json:"start"`
	End    int64    `json:"end"`
	Attrs  []attrKV `json:"attrs"`
}

type attrKV struct {
	K string `json:"k"`
	V string `json:"v"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: metricsval <file.jsonl> [more.jsonl ...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		n, errs := validateFile(path)
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "metricsval: %s\n", e)
		}
		if len(errs) > 0 {
			bad = true
			continue
		}
		fmt.Printf("%s: %d records ok\n", path, n)
	}
	if bad {
		os.Exit(1)
	}
}

// validateFile checks every line of one export; it returns the record
// count and all diagnostics (it does not stop at the first).
func validateFile(path string) (int, []string) {
	f, err := os.Open(path)
	if err != nil {
		return 0, []string{err.Error()}
	}
	defer f.Close()

	var errs []string
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Sprintf("%s:%d: %s", path, line, fmt.Sprintf(format, args...)))
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for line := 1; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(raw) == 0 {
			fail(line, "empty line")
			continue
		}
		var r record
		if err := json.Unmarshal(raw, &r); err != nil {
			fail(line, "not a JSON object: %v", err)
			continue
		}
		if r.Name == "" {
			fail(line, "%s record with empty name", r.Kind)
			continue
		}
		switch r.Kind {
		case "counter", "gauge":
			if r.Value == nil {
				fail(line, "%s %q missing value", r.Kind, r.Name)
			}
			if r.Kind == "counter" && r.Value != nil && *r.Value < 0 {
				fail(line, "counter %q has negative value %d", r.Name, *r.Value)
			}
		case "histogram":
			validateHistogram(r, line, fail)
		case "span":
			if r.End < r.Start {
				fail(line, "span %q ends (%d) before it starts (%d)", r.Name, r.End, r.Start)
			}
			for _, kv := range r.Attrs {
				if kv.K == "" {
					fail(line, "span %q has attribute with empty key", r.Name)
				}
			}
		default:
			fail(line, "unknown kind %q", r.Kind)
			continue
		}
		n++
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Sprintf("%s: %v", path, err))
	}
	if n == 0 && len(errs) == 0 {
		errs = append(errs, fmt.Sprintf("%s: no records", path))
	}
	return n, errs
}

// validateHistogram enforces the bucket invariants the exporter
// guarantees: counts has one overflow bucket beyond bounds, bounds are
// strictly increasing, and the total matches the per-bucket sum.
func validateHistogram(r record, line int, fail func(int, string, ...any)) {
	if len(r.Counts) != len(r.Bounds)+1 {
		fail(line, "histogram %q has %d counts for %d bounds (want bounds+1)",
			r.Name, len(r.Counts), len(r.Bounds))
		return
	}
	for i := 1; i < len(r.Bounds); i++ {
		if r.Bounds[i] <= r.Bounds[i-1] {
			fail(line, "histogram %q bounds not strictly increasing at index %d (%d after %d)",
				r.Name, i, r.Bounds[i], r.Bounds[i-1])
			return
		}
	}
	var total int64
	for i, c := range r.Counts {
		if c < 0 {
			fail(line, "histogram %q has negative bucket count at index %d", r.Name, i)
			return
		}
		total += c
	}
	if total != r.Count {
		fail(line, "histogram %q count %d != sum of buckets %d", r.Name, r.Count, total)
	}
}
