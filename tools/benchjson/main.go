// Command benchjson converts `go test -bench` text output into the
// repo's benchmark-trajectory JSON (BENCH_<date>.json, written by
// scripts/bench.sh). It parses the standard benchmark line format —
//
//	BenchmarkHotMatmul/serial-4  100  123456 ns/op  12.3 MB/s  88 B/op  2 allocs/op
//
// plus the goos/goarch/pkg/cpu preamble, and emits one JSON document
// with every benchmark's numbers and, for each Benchmark<name> that has
// both a `<name>/serial` and a `<name>/parallel` variant, the
// serial/parallel speedup. Those pairs are the perf pass's acceptance
// numbers: the file records what was measured on this hardware, and
// comparing files across dates gives the trajectory.
//
// The date is a required flag rather than the wall clock so reruns over
// a saved benchmark log are reproducible byte for byte.
//
// It also compares two recorded files — ROADMAP's benchmark-trajectory
// diffing. `-diff old.json new.json` prints a per-benchmark table of
// new/old ratios for ns/op and allocs/op and exits nonzero when any
// benchmark present in both files regressed beyond `-threshold` (default
// 1.25, i.e. 25% slower). Benchmarks that exist in only one file are
// listed but never fail the run: new suites must not break the diff.
//
// Usage:
//
//	go test -bench 'Hot' . | benchjson -date 2026-08-06 -o BENCH_2026-08-06.json
//	benchjson -diff BENCH_2026-08-06.json BENCH_2026-09-01.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"` // full sub-benchmark path, -N suffix stripped
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Speedup pairs a benchmark's serial and parallel variants.
type Speedup struct {
	Name       string  `json:"name"`
	SerialNs   float64 `json:"serial_ns_per_op"`
	ParallelNs float64 `json:"parallel_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// Report is the whole BENCH_<date>.json document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

func main() {
	date := flag.String("date", "", "ISO date stamped into the report (required)")
	out := flag.String("o", "", "output path (default stdout)")
	diff := flag.Bool("diff", false, "compare two BENCH files: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 1.25, "ns/op regression ratio that fails -diff")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold))
	}
	if *date == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -date is required")
		os.Exit(2)
	}

	rep := Report{Date: *date, GoVersion: runtime.Version()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		parseLine(&rep, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep.Speedups = speedups(rep.Benchmarks)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine folds one line of `go test -bench` output into rep: either a
// preamble key (goos/goarch/pkg/cpu) or a Benchmark result line. Other
// lines (PASS, ok, test logs) are ignored.
func parseLine(rep *Report, line string) {
	for _, p := range []struct {
		prefix string
		dst    *string
	}{
		{"goos: ", &rep.GOOS},
		{"goarch: ", &rep.GOARCH},
		{"pkg: ", &rep.Pkg},
		{"cpu: ", &rep.CPU},
	} {
		if strings.HasPrefix(line, p.prefix) {
			*p.dst = strings.TrimSpace(strings.TrimPrefix(line, p.prefix))
			return
		}
	}
	f := strings.Fields(line)
	if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
		return
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return
	}
	b := Benchmark{Iterations: iters, Procs: 1}
	b.Name, b.Procs = splitProcs(strings.TrimPrefix(f[0], "Benchmark"))
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	if b.NsPerOp == 0 {
		return
	}
	rep.Benchmarks = append(rep.Benchmarks, b)
}

// splitProcs strips the trailing -N GOMAXPROCS suffix the bench runner
// appends when GOMAXPROCS > 1 (the suffix follows the last path segment,
// so splitting on the final dash is safe only when what follows is a
// number).
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// loadReport reads one BENCH_<date>.json document.
func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runDiff compares two recorded reports benchmark by benchmark and
// returns the process exit code: 0 when nothing regressed past
// threshold, 1 otherwise. Ratios are new/old, so < 1 is an improvement.
func runDiff(w io.Writer, oldPath, newPath string, threshold float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	var names []string
	newBy := make(map[string]Benchmark, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		newBy[b.Name] = b
		names = append(names, b.Name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "benchjson diff: %s (%s) -> %s (%s), threshold %.2fx\n",
		oldPath, oldRep.Date, newPath, newRep.Date, threshold)
	regressed := 0
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok || ob.NsPerOp == 0 {
			fmt.Fprintf(w, "  %-48s %12.0f ns/op  (new benchmark)\n", name, nb.NsPerOp)
			continue
		}
		ratio := nb.NsPerOp / ob.NsPerOp
		mark := ""
		if ratio > threshold {
			mark = "  REGRESSION"
			regressed++
		}
		allocs := ""
		if ob.AllocsPerOp != nb.AllocsPerOp {
			allocs = fmt.Sprintf("  allocs %d -> %d", ob.AllocsPerOp, nb.AllocsPerOp)
		}
		fmt.Fprintf(w, "  %-48s %12.0f -> %12.0f ns/op  %.2fx%s%s\n",
			name, ob.NsPerOp, nb.NsPerOp, ratio, allocs, mark)
	}
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			fmt.Fprintf(w, "  %-48s (dropped: present only in %s)\n", name, oldPath)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(w, "benchjson: %d benchmark(s) regressed beyond %.2fx\n", regressed, threshold)
		return 1
	}
	fmt.Fprintln(w, "benchjson: no regressions beyond threshold")
	return 0
}

// speedups pairs every `<base>/serial` with its `<base>/parallel`
// sibling, in name order.
func speedups(benchmarks []Benchmark) []Speedup {
	byName := make(map[string]Benchmark, len(benchmarks))
	var bases []string
	for _, b := range benchmarks {
		byName[b.Name] = b
		if base, ok := strings.CutSuffix(b.Name, "/serial"); ok {
			bases = append(bases, base)
		}
	}
	sort.Strings(bases)
	var out []Speedup
	for _, base := range bases {
		ser := byName[base+"/serial"]
		par, ok := byName[base+"/parallel"]
		if !ok || ser.NsPerOp == 0 || par.NsPerOp == 0 {
			continue
		}
		out = append(out, Speedup{
			Name:       base,
			SerialNs:   ser.NsPerOp,
			ParallelNs: par.NsPerOp,
			Speedup:    ser.NsPerOp / par.NsPerOp,
		})
	}
	return out
}
