// Command gencorpus regenerates the seed corpora for package wire's fuzz
// targets under internal/wire/testdata/fuzz/. Run it from the repository
// root after changing the wire format:
//
//	go run ./tools/gencorpus
//
// The corpora complement the in-code f.Add seeds: they are checked in so
// `go test` always exercises the interesting shapes (valid packets of
// every kind, trimmed packets, CRC-corrupted packets, truncations) even
// without a fuzzing session, and `go test -fuzz` starts from real packets
// instead of rediscovering the magic bytes.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"trimgrad/internal/wire"
)

const corpusRoot = "internal/wire/testdata/fuzz"

func writeEntry(target, name string, values ...any) {
	dir := filepath.Join(corpusRoot, target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := "go test fuzz v1\n"
	for _, v := range values {
		switch x := v.(type) {
		case []byte:
			body += "[]byte(" + strconv.Quote(string(x)) + ")\n"
		case uint64:
			body += fmt.Sprintf("uint64(%d)\n", x)
		case uint:
			body += fmt.Sprintf("uint(%d)\n", x)
		case uint8:
			body += fmt.Sprintf("byte(%q)\n", x)
		case int:
			body += fmt.Sprintf("int(%d)\n", x)
		default:
			log.Fatalf("unsupported corpus value type %T", v)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

func main() {
	h := wire.Header{
		Flow: 7, Message: 3, Row: 1, Start: 0,
		Count: 64, P: 4, Q: 12, Seed: 0xDEADBEEF,
	}
	heads := make([]uint32, h.Count)
	tails := make([]uint32, h.Count)
	for i := range heads {
		heads[i] = uint32(i) % (1 << h.P)
		tails[i] = uint32(i*2654435761) % (1 << h.Q)
	}
	data, err := wire.BuildDataPacket(h, heads, tails)
	if err != nil {
		log.Fatal(err)
	}
	trimmed := wire.Trim(append([]byte(nil), data...), wire.HeaderSize+40)
	meta := wire.BuildMetaPacket(h, 3, 1024, 0.125)
	naive, err := wire.BuildNaivePacket(h, []float32{1.5, -2.25, 0, 3e7})
	if err != nil {
		log.Fatal(err)
	}
	naiveTrimmed := wire.Trim(append([]byte(nil), naive...), wire.HeaderSize+8)

	corrupt := func(buf []byte, off int) []byte {
		c := append([]byte(nil), buf...)
		c[off] ^= 0x40
		return c
	}

	for _, target := range []string{
		"FuzzParseDataPacket", "FuzzParseMetaPacket", "FuzzParseNaivePacket", "FuzzTrim",
	} {
		writeEntry(target, "valid-data", data)
		writeEntry(target, "trimmed-data", trimmed)
		writeEntry(target, "valid-meta", meta)
		writeEntry(target, "valid-naive", naive)
		writeEntry(target, "trimmed-naive", naiveTrimmed)
		writeEntry(target, "corrupt-header", corrupt(data, 13))
		writeEntry(target, "corrupt-payload", corrupt(data, wire.HeaderSize+3))
		writeEntry(target, "corrupt-crc", corrupt(data, 33))
		writeEntry(target, "truncated", data[:wire.HeaderSize+5])
		writeEntry(target, "header-only", data[:wire.HeaderSize])
	}
	writeEntry("FuzzTrimPreservesHeads", "small", uint64(11), 16, 60)
	writeEntry("FuzzTrimPreservesHeads", "cut-in-tails", uint64(12), 128, 300)
	writeEntry("FuzzTrimPreservesHeads", "below-boundary", uint64(13), 200, 41)

	// Aggregate-merge corpus: (seed, count, tcA, tcB, mutate) tuples
	// covering matched keys at assorted trim points, the degenerate one-
	// coordinate packet, and each key-field mutation the merge must reject.
	writeEntry("FuzzAggregateMerge", "untrimmed", uint64(21), uint(64), uint(64), uint(64), uint8(0))
	writeEntry("FuzzAggregateMerge", "asymmetric-trim", uint64(22), uint(64), uint(5), uint(48), uint8(0))
	writeEntry("FuzzAggregateMerge", "fully-trimmed", uint64(23), uint(32), uint(0), uint(0), uint8(0))
	writeEntry("FuzzAggregateMerge", "one-coord", uint64(24), uint(1), uint(1), uint(0), uint8(0))
	writeEntry("FuzzAggregateMerge", "mismatch-message", uint64(25), uint(16), uint(8), uint(8), uint8(1))
	writeEntry("FuzzAggregateMerge", "mismatch-row", uint64(26), uint(16), uint(8), uint(8), uint8(2))
	writeEntry("FuzzAggregateMerge", "mismatch-offset", uint64(27), uint(16), uint(8), uint(8), uint8(4))

	// Aggregate-parse corpus: valid full and trimmed aggregates plus
	// corrupted and truncated variants.
	aggSums := make([]float32, 24)
	for i := range aggSums {
		aggSums[i] = float32(i) - 11.5
	}
	aggHdr := h
	aggHdr.Flow = 3
	aggHdr.Count = uint16(len(aggSums))
	aggFull, err := wire.BuildAggPacket(aggHdr, aggSums, aggSums)
	if err != nil {
		log.Fatal(err)
	}
	aggTrimmed, err := wire.BuildAggPacket(aggHdr, aggSums, aggSums[:7])
	if err != nil {
		log.Fatal(err)
	}
	writeEntry("FuzzParseAggPacket", "valid-agg", aggFull)
	writeEntry("FuzzParseAggPacket", "trimmed-agg", aggTrimmed)
	writeEntry("FuzzParseAggPacket", "corrupt-header", corrupt(aggFull, 13))
	writeEntry("FuzzParseAggPacket", "corrupt-sums", corrupt(aggFull, wire.HeaderSize+3))
	writeEntry("FuzzParseAggPacket", "truncated", aggFull[:wire.HeaderSize+9])
	writeEntry("FuzzParseAggPacket", "valid-data", data)
	fmt.Println("wrote corpora under", corpusRoot)
}
