// Fabric fast-path benchmarks (DESIGN.md §11): the timer-wheel
// scheduler, the typed-event dispatch, and the pooled packet/buffer
// arenas. These are trajectory benchmarks — BENCH_<date>.json records
// them and `benchjson -diff` tracks the numbers across dates — and the
// pooled-vs-legacy pairs are the acceptance evidence for the allocation
// claims (TestFabricHopAllocations in internal/netsim pins the hard
// per-hop budget).
package trimgrad

import (
	"fmt"
	"runtime"
	"testing"

	"trimgrad/internal/netsim"
	"trimgrad/internal/quant"
	"trimgrad/internal/wire"
	"trimgrad/internal/xrand"
)

// fabricStar builds the 4-host star every hop benchmark runs over, with
// sink handlers so delivered packets are consumed and recycled.
func fabricStar(sim *netsim.Sim) *netsim.Star {
	link := netsim.LinkConfig{Bandwidth: netsim.Gbps(10), Delay: netsim.Microsecond}
	star := netsim.BuildStar(sim, 4, link, netsim.QueueConfig{})
	for _, h := range star.Hosts {
		h.Handler = func(*netsim.Packet) {}
	}
	return star
}

// BenchmarkFabricHop measures the steady-state cost of one simulated
// packet crossing the fabric (two hops: host→switch→host), per sending
// style. "pooled" is the fast path: Sim.NewPacket records recycled on
// delivery, typed events dispatched without closures. "legacy" replays
// the pre-wheel idiom — literal packets and a scheduled closure per send
// — and is the baseline for the ≥2× allocs/hop reduction claim.
func BenchmarkFabricHop(b *testing.B) {
	const pkts = 256
	const hops = pkts * 2
	for _, style := range []string{"pooled", "legacy"} {
		pooled := style == "pooled"
		b.Run(style, func(b *testing.B) {
			sim := netsim.NewSim()
			star := fabricStar(sim)
			send := func() {
				for j := 0; j < pkts; j++ {
					src := star.Hosts[j%4]
					dst := star.Hosts[(j+1)%4].ID()
					if pooled {
						pkt := sim.NewPacket()
						pkt.Dst = dst
						pkt.Size = 1500
						src.Send(pkt)
					} else {
						pkt := &netsim.Packet{Dst: dst, Size: 1500}
						sim.At(sim.Now(), func() { src.Send(pkt) })
					}
				}
				sim.Run()
			}
			send() // warm the event, packet, and queue pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				send()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*hops), "ns/hop")
		})
	}
}

// BenchmarkFabricFatTree measures the pooled fast path on the multi-tier
// fabric: a k=4 fat tree (16 hosts, 20 switches) under a full incast into
// host 15, every sender a distinct ECMP flow so the load spreads across
// the aggregation and core tiers. The per-hop metric divides by the exact
// hop count of each flow's hashed path (PathFor), so it stays comparable
// to BenchmarkFabricHop's star numbers as routing depth grows.
func BenchmarkFabricFatTree(b *testing.B) {
	const pktsPerSender = 16
	sim := netsim.NewSim()
	topo, err := netsim.NewFatTree(sim, netsim.FatTreeConfig{
		K:        4,
		HostLink: netsim.LinkConfig{Bandwidth: netsim.Gbps(10), Delay: netsim.Microsecond},
		Queue:    netsim.QueueConfig{CapacityBytes: 1 << 20},
		ECMPSeed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range topo.Hosts {
		h.Handler = func(*netsim.Packet) {}
	}
	sink := topo.Hosts[15].ID()
	hops := 0
	for s := 0; s < 15; s++ {
		hops += pktsPerSender * (len(topo.PathFor(netsim.NodeID(s), sink, uint64(s+1))) - 1)
	}
	send := func() {
		for j := 0; j < pktsPerSender; j++ {
			for s := 0; s < 15; s++ {
				pkt := sim.NewPacket()
				pkt.Dst = sink
				pkt.Size = 1500
				pkt.FlowID = uint64(s + 1)
				topo.Hosts[s].Send(pkt)
			}
		}
		sim.Run()
	}
	send() // warm the event, packet, and queue pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*hops), "ns/hop")
}

// BenchmarkShardFabric measures the partitioned engine on the k=4 fat
// tree under an all-to-all burst — every host fires at rotating remote
// peers, so most packets cross rack (and therefore shard) boundaries.
// The 1/2/4-shard runs produce bit-identical simulations (pinned by
// TestShardTrafficDifferential); this benchmark records what that
// parallelism buys in wall clock. On a single-core runner the ratio is
// ≈1; the BENCH trajectory on multi-core boxes carries the speedup
// claim.
func BenchmarkShardFabric(b *testing.B) {
	const pktsPerHost = 16
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sim := netsim.NewSim()
			topo, err := netsim.NewFatTree(sim, netsim.FatTreeConfig{
				K:        4,
				HostLink: netsim.LinkConfig{Bandwidth: netsim.Gbps(10), Delay: netsim.Microsecond},
				Queue:    netsim.QueueConfig{CapacityBytes: 1 << 20},
				ECMPSeed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			eng, err := netsim.ShardTopology(topo, shards)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			for _, h := range topo.Hosts {
				h.Handler = func(*netsim.Packet) {}
			}
			n := len(topo.Hosts)
			send := func() {
				for j := 0; j < pktsPerHost; j++ {
					for s := 0; s < n; s++ {
						// Rotate destinations through remote pods so the
						// traffic exercises the cross-shard mailboxes.
						dst := (s + 4 + j) % n
						// Pooled packets come from the sending host's own
						// shard so recycling stays shard-local.
						pkt := topo.Hosts[s].Sim().NewPacket()
						pkt.Dst = topo.Hosts[dst].ID()
						pkt.Size = 1500
						pkt.FlowID = uint64(s*n + dst + 1)
						topo.Hosts[s].Send(pkt)
					}
				}
				eng.Run()
			}
			send() // warm pools on every shard
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				send()
			}
			hops := b.N * pktsPerHost * n
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(hops), "ns/pkt")
		})
	}
}

// BenchmarkArenaChaos measures the stamped-arena fast path under the
// aliasing faults that used to force the copy path (DESIGN.md §16):
// reordering plus duplication on the first host's link. "fresh" allocates
// every payload at send time — the cost the old unconditional copy paid —
// while "arena" recycles generation-stamped buffers, so its steady-state
// allocs/hop must sit within 2× of the clean fabric's pooled budget (the
// only remaining allocations are the duplicates' defensive clones).
func BenchmarkArenaChaos(b *testing.B) {
	const pkts = 256
	const hops = pkts * 2
	for _, style := range []string{"fresh", "arena"} {
		useArena := style == "arena"
		b.Run(style, func(b *testing.B) {
			sim := netsim.NewSim()
			star := fabricStar(sim)
			star.Net.InjectFaults(0, netsim.SwitchIDBase, netsim.FaultConfig{
				Seed: 3, ReorderRate: 0.2, ReorderDelay: 5 * netsim.Microsecond, DuplicateRate: 0.2,
			})
			arena := wire.NewArena()
			bufs := make([][]byte, 0, pkts)
			send := func() {
				bufs = bufs[:0]
				for j := 0; j < pkts; j++ {
					pkt := sim.NewPacket()
					pkt.Dst = star.Hosts[(j+1)%4].ID()
					pkt.Size = 1500
					if useArena {
						buf, gen := arena.GetStamped(1500)
						pkt.Payload = buf
						pkt.PayloadOwner = arena
						pkt.PayloadGen = gen
						bufs = append(bufs, buf)
					} else {
						pkt.Payload = make([]byte, 1500)
					}
					star.Hosts[j%4].Send(pkt)
				}
				sim.Run()
				for _, buf := range bufs {
					arena.Put(buf)
				}
			}
			send() // warm pools, free lists, and stamp registrations
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				send()
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N*hops), "allocs/hop")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*hops), "ns/hop")
		})
	}
}

// BenchmarkFabricWheel measures raw scheduler throughput: events spread
// across every level of the timer wheel (same-slot, in-window, overflow)
// with no network attached. This isolates the tentpole — schedule +
// dispatch cost per event.
func BenchmarkFabricWheel(b *testing.B) {
	const events = 4096
	delays := make([]netsim.Time, events)
	rng := xrand.New(42)
	for i := range delays {
		delays[i] = netsim.Time(rng.Uint64() % uint64(2*netsim.Millisecond))
	}
	fn := func() {}
	sim := netsim.NewSim()
	run := func() {
		for _, d := range delays {
			sim.After(d, fn)
		}
		sim.Run()
	}
	run() // warm the event pool so iterations measure steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*events), "ns/event")
}

// BenchmarkFabricPack measures PackRow with and without the wire arena:
// "fresh" allocates every meta/data buffer, "arena" recycles them via
// PackRowTo/PutPacked — the sender-side buffer loop the transport runs
// per message.
func BenchmarkFabricPack(b *testing.B) {
	row := benchRow(1 << 13)
	c := quant.MustNew(quant.Params{Scheme: quant.RHT})
	enc, err := c.Encode(row, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := wire.PackRow(1, 2, 3, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		a := wire.NewArena()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			meta, data, err := wire.PackRowTo(a, 1, 2, 3, enc)
			if err != nil {
				b.Fatal(err)
			}
			wire.PutPacked(a, meta, data)
		}
	})
}
