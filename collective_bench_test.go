// Collective-zoo benchmarks: one simulated all-reduce round per
// algorithm over a trimming star fabric, plus the parameter-server
// incast with in-network aggregation switched on. These are trajectory
// benchmarks (BENCH_<date>.json records them); the interesting axes are
// events and allocations per round — wall time is dominated by the
// simulator, and the per-algorithm spread shows the event-count cost of
// each schedule's traffic pattern.
package trimgrad

import (
	"fmt"
	"testing"

	"trimgrad/internal/collective"
	"trimgrad/internal/core"
	"trimgrad/internal/netsim"
	"trimgrad/internal/quant"
	"trimgrad/internal/transport"
	"trimgrad/internal/xrand"
)

// benchAllReduce runs b.N complete rounds of alg over n workers, each
// round on a fresh fabric so pool/queue state never accumulates across
// iterations.
func benchAllReduce(b *testing.B, alg collective.Algorithm, n int, agg bool) {
	dim := 1 << 13
	grads := make([][]float32, n)
	for i := range grads {
		r := xrand.New(uint64(i) + 1)
		g := make([]float32, dim)
		for j := range g {
			g[j] = float32(r.NormFloat64() * 0.05)
		}
		grads[i] = g
	}
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		sim := netsim.NewSim()
		star := netsim.BuildStar(sim, n,
			netsim.LinkConfig{Bandwidth: netsim.Gbps(10), Delay: netsim.Microsecond},
			netsim.QueueConfig{
				CapacityBytes:      48 << 10,
				HighCapacityBytes:  1 << 20,
				Mode:               netsim.TrimOverflow,
				AggregateTrimmable: agg,
			})
		workers := make([]*collective.Worker, n)
		for i := 0; i < n; i++ {
			stack, err := transport.New(star.Hosts[i])
			if err != nil {
				b.Fatal(err)
			}
			w, err := collective.New(i, stack,
				collective.WithConfig(core.Config{
					Params:  quant.Params{Scheme: quant.Sign},
					RowSize: 1 << 12,
				}),
				collective.WithMode(collective.Trimmable))
			if err != nil {
				b.Fatal(err)
			}
			workers[i] = w
		}
		done := 0
		err := collective.AllReduce(alg, 1, 100, workers, grads,
			func(int, []float32, netsim.Time) { done++ },
			func(rank int, err error) { b.Fatalf("rank %d: %v", rank, err) })
		if err != nil {
			b.Fatal(err)
		}
		sim.RunUntil(20 * netsim.Second)
		if done != n {
			b.Fatalf("round incomplete: %d/%d", done, n)
		}
	}
}

// BenchmarkCollectiveAllReduce covers every algorithm at 8 workers.
func BenchmarkCollectiveAllReduce(b *testing.B) {
	for _, alg := range collective.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			benchAllReduce(b, alg, 8, false)
		})
	}
}

// BenchmarkCollectivePSAggregation pairs the parameter-server incast
// with and without the aggregating switch — the in-network aggregation
// claim's perf evidence: merging at the queue removes most of the
// receiver-side events and deliveries.
func BenchmarkCollectivePSAggregation(b *testing.B) {
	for _, agg := range []bool{false, true} {
		b.Run(fmt.Sprintf("agg=%v", agg), func(b *testing.B) {
			benchAllReduce(b, collective.AlgParamServer, 8, agg)
		})
	}
}
