// Package trimgrad is a pure-Go implementation of trimmable gradients —
// just-in-time gradient compression via packet trimming (Chen, Vargaftik,
// Ben Basat; HotNets '24) — together with every substrate the paper's
// evaluation needs: the 1-bit/multi-bit quantization codecs (§3), the
// head/tail trimmable wire format (§2), a discrete-event data-center
// network simulator with NDP-style trimming switches, reliable and
// trim-aware transports, ring/direct collectives, and a deterministic
// data-parallel training stack (§4).
//
// This root package is the public facade: it re-exports the types most
// applications need. The full surface lives in the internal packages,
// organized as:
//
//	internal/quant      trimmable quantization codecs (§3)
//	internal/wire       packet format + switch-side Trim (§2)
//	internal/core       gradient ⇄ packet pipeline, injectors, transcripts
//	internal/netsim     discrete-event fabric with trimming switches
//	internal/transport  reliable (baseline) and trim-aware protocols
//	internal/collective ring/direct all-reduce, all-gather, broadcast
//	internal/ml, internal/ddp   training substrate and DDP driver (§4)
//	internal/sparse, internal/lowrank   §5.2–5.3 compression companions
//	internal/exp        the figure-regeneration harness (cmd/trimbench)
//
// # Quick start
//
//	cfg := trimgrad.Config{Params: trimgrad.Params{Scheme: trimgrad.RHT}}
//	enc, _ := trimgrad.NewEncoder(cfg)
//	msg, _ := enc.Encode(epoch, msgID, grad)
//	// ship msg.Meta reliably, msg.Data through the trimming network ...
//	dec, _ := trimgrad.NewDecoder(cfg, msgID)
//	for _, pkt := range arrived { dec.Handle(pkt) }
//	approx, stats, _ := dec.Reconstruct(len(grad))
//
// See examples/ for runnable scenarios and cmd/trimbench for the paper's
// figures.
package trimgrad

import (
	"trimgrad/internal/core"
	"trimgrad/internal/quant"
	"trimgrad/internal/wire"
)

// Quantization schemes (§3 of the paper).
const (
	// Sign is sign-magnitude quantization: head = sign bit, trimmed
	// coordinates decode to ±σ.
	Sign = quant.Sign
	// SQ is stochastic quantization with TernGrad-style clipping.
	SQ = quant.SQ
	// SD is subtractive dithering with shared-seed dither.
	SD = quant.SD
	// RHT is the DRIVE-style randomized-Hadamard-transform encoding.
	RHT = quant.RHT
	// Linear is the P-bit multi-level head of §5.1.
	Linear = quant.Linear
	// RHTLinear composes RHT with a P-bit linear head.
	RHTLinear = quant.RHTLinear
	// Eden is the EDEN extension of DRIVE: RHT + Lloyd-Max heads.
	Eden = quant.Eden
)

// Re-exported configuration and pipeline types.
type (
	// Params selects and configures a quantization codec.
	Params = quant.Params
	// Codec encodes rows into trimmable head/tail form.
	Codec = quant.Codec
	// EncodedRow is one encoded gradient row.
	EncodedRow = quant.EncodedRow
	// Scheme identifies a quantization scheme.
	Scheme = quant.Scheme

	// Config configures an Encoder/Decoder pair.
	Config = core.Config
	// Encoder turns gradients into trimmable packet streams.
	Encoder = core.Encoder
	// Decoder reassembles gradients from (possibly trimmed) packets.
	Decoder = core.Decoder
	// Message is one encoded collective-communication message.
	Message = core.Message
	// Stats summarizes what a Decoder observed.
	Stats = core.Stats
	// Injector models the network's effect on packets.
	Injector = core.Injector
	// Transcript records packet fates for §5.4 replay.
	Transcript = core.Transcript
)

// NewCodec constructs a quantization codec.
func NewCodec(p Params) (Codec, error) { return quant.New(p) }

// NewEncoder constructs a gradient encoder.
func NewEncoder(cfg Config) (*Encoder, error) { return core.NewEncoder(cfg) }

// NewDecoder constructs a decoder for one message.
func NewDecoder(cfg Config, msgID uint32) (*Decoder, error) {
	return core.NewDecoder(cfg, msgID)
}

// Trim performs the switch-side trim operation on a raw packet buffer.
func Trim(pkt []byte, targetSize int) []byte { return wire.Trim(pkt, targetSize) }

// NewTrimmer returns an injector trimming packets with the given
// probability.
func NewTrimmer(rate float64, seed uint64) Injector { return core.NewTrimmer(rate, seed) }

// NewDropper returns an injector dropping packets with the given
// probability.
func NewDropper(rate float64, seed uint64) Injector { return core.NewDropper(rate, seed) }
