package trimgrad

import (
	"testing"

	"trimgrad/internal/core"
	"trimgrad/internal/fwht"
	"trimgrad/internal/obs"
	"trimgrad/internal/quant"
)

// encodeNsPerOp benchmarks the core encode hot path against the given
// registry and returns the best of three runs (minimum filters scheduler
// noise; we care about the achievable cost, not the average).
func encodeNsPerOp(t *testing.T, reg *obs.Registry) float64 {
	t.Helper()
	row := benchRow(fwht.DefaultRowSize)
	enc, err := core.NewEncoderWith(
		core.WithConfig(core.Config{Params: quant.Params{Scheme: quant.RHT}, RowSize: 1 << 13}),
		core.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := enc.Encode(1, uint32(n+1), row); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.NsPerOp())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// TestObsOverheadGuard pins the "telemetry is free when you don't look at
// it" contract of the obs redesign: encoding against a live registry must
// stay within 5% of encoding against obs.Nop. The instrumentation sits on
// the encode hot path, so a regression here (per-packet locking, per-byte
// accounting, anything super-constant) is a paper-relevant perf bug —
// Figure 5's encode overhead claims assume the hook costs ~nothing.
func TestObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short mode")
	}
	const limit = 1.05
	// One retry absorbs a noisy first measurement on loaded CI machines.
	var ratio float64
	for attempt := 0; attempt < 2; attempt++ {
		nop := encodeNsPerOp(t, obs.Nop)
		live := encodeNsPerOp(t, obs.New())
		ratio = live / nop
		t.Logf("attempt %d: nop %.0f ns/op, live %.0f ns/op, ratio %.3f", attempt, nop, live, ratio)
		if ratio <= limit {
			return
		}
	}
	t.Fatalf("live-registry encode is %.3fx the obs.Nop cost (limit %.2fx)", ratio, limit)
}
