#!/usr/bin/env bash
# check.sh — trimgrad's tier-1 verification gate.
#
# Usage:
#   scripts/check.sh          full gate (includes the race-detector pass)
#   scripts/check.sh -short   fast mode: skips the race-detector pass and
#                             runs the test suite with -short
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
if [[ "${1:-}" == "-short" ]]; then
  short=1
fi

step() { echo "== $*"; }

step "gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed:" >&2
  echo "$unformatted" >&2
  exit 1
fi

step "go vet ./..."
go vet ./...

step "trimlint ./..."
go run ./cmd/trimlint ./...

step "go build ./..."
go build ./...

if [[ $short -eq 1 ]]; then
  step "go test -short ./..."
  go test -short ./...
  echo "OK (short mode: race-detector pass skipped)"
  exit 0
fi

step "go test ./..."
go test ./...

step "go test -race (concurrency-heavy packages)"
go test -race ./internal/core ./internal/transport ./internal/collective ./internal/ddp

echo "OK"
