#!/usr/bin/env bash
# check.sh — trimgrad's tier-1 verification gate.
#
# Usage:
#   scripts/check.sh          full gate (race pass, fuzz smoke, coverage)
#   scripts/check.sh -short   fast mode: skips the race-detector pass and
#                             runs the test suite with -short
#   scripts/check.sh -chaos   fault-injection pass only: race-enabled chaos,
#                             fault, and duplicate-delivery regression tests,
#                             plus the stamped-arena suites (aliasing faults,
#                             counted stale drops, copy-vs-arena bit-identity)
#   scripts/check.sh -bench   perf smoke only: the BenchmarkHot* suite,
#                             the BenchmarkFabric* fast-path suite (wheel,
#                             pooled hops, and the k=4 fat-tree incast),
#                             and the BenchmarkShardFabric partitioned-
#                             engine suite run clean under -race with live
#                             obs registries, and the obs overhead guard
#                             still holds
#   scripts/check.sh -lint    static pass only: gofmt + go vet + trimlint
#                             (trimlint replays from .trimlint-cache when
#                             the tree is unchanged)
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
case "${1:-}" in
  -short) mode=short ;;
  -chaos) mode=chaos ;;
  -bench) mode=bench ;;
  -lint)  mode=lint ;;
esac

step() { echo "== $*"; }

if [[ $mode == bench ]]; then
  step "go test -race -bench Hot (hot-path suite, live registries)"
  go test -race -run '^$' -bench 'Hot' -benchtime 1x .
  step "go test -race -bench Fabric (wheel + pooled-event fast path)"
  go test -race -run '^$' -bench '^Fabric' -benchtime 1x .
  step "go test -race -bench Shard (partitioned engine, cross-shard mailboxes)"
  go test -race -run '^$' -bench 'Shard' -benchtime 1x .
  step "obs overhead guard (encode hot path, Nop vs live registry)"
  go test -run 'TestObsOverheadGuard' -count=1 .
  echo "OK (bench smoke)"
  exit 0
fi

if [[ $mode == chaos ]]; then
  step "go test -race (chaos/fault/duplicate regressions)"
  go test -race -run 'Chaos|Fault|Flap|Duplicate|PauseAndFail' \
    ./internal/netsim ./internal/transport ./internal/collective ./internal/exp
  step "go test -race (stamped-arena suites: aliasing faults, stale drops, bit-identity)"
  go test -race -run 'Arena' -count=1 \
    ./internal/wire ./internal/netsim ./internal/transport
  echo "OK (chaos pass)"
  exit 0
fi

step "gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed:" >&2
  echo "$unformatted" >&2
  exit 1
fi

step "go vet ./..."
go vet ./...

step "trimlint ./..."
go run ./cmd/trimlint ./...

if [[ $mode == lint ]]; then
  echo "OK (lint mode: gofmt + vet + trimlint)"
  exit 0
fi

step "go build ./..."
go build ./...

if [[ $mode == short ]]; then
  step "go test -short ./..."
  go test -short ./...
  echo "OK (short mode: race-detector pass skipped)"
  exit 0
fi

step "go test ./..."
go test ./...

step "go test -race (concurrency-heavy packages)"
go test -race ./internal/core ./internal/transport ./internal/collective ./internal/ddp

step "shard determinism (differential + sharded matrices, -race, GOMAXPROCS 1 and 4)"
# The bit-identity contract must hold however the goroutines are actually
# scheduled: truly parallel (4) and fully serialized (1) both run under
# the race detector.
for procs in 1 4; do
  GOMAXPROCS=$procs go test -race -run 'Shard' -count=1 \
    ./internal/netsim ./internal/collective
done

step "metrics export smoke (trimbench -metrics -> metricsval)"
metrics_tmp=$(mktemp /tmp/trimgrad-metrics.XXXXXX.jsonl)
trap 'rm -f "$metrics_tmp"' EXIT
go run ./cmd/trimbench -exp fig5 -quick -metrics "$metrics_tmp" > /dev/null
go run ./tools/metricsval "$metrics_tmp"

step "obs overhead guard (encode hot path, Nop vs live registry)"
go test -run 'TestObsOverheadGuard' -count=1 .

step "fuzz smoke (wire parsers + Trim + aggregate merge, 2s each)"
for target in FuzzParseDataPacket FuzzParseMetaPacket FuzzParseNaivePacket FuzzTrim FuzzTrimPreservesHeads FuzzAggregateMerge FuzzParseAggPacket; do
  go test -run '^$' -fuzz "^${target}\$" -fuzztime 2s ./internal/wire
done

step "coverage (fault-injection surface)"
go test -cover ./internal/netsim ./internal/wire ./internal/transport \
  ./internal/collective ./internal/core | awk '{print "   " $2 "\t" $5}'

echo "OK"
