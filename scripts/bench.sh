#!/usr/bin/env bash
# bench.sh — trimgrad's benchmark-trajectory harness.
#
# Runs the hot-path benchmark suite (the BenchmarkHot* family in
# bench_test.go: encode+decode round, matmul kernels, ml epoch — each
# with serial and parallel variants) plus the per-figure micro
# benchmarks, and converts the output into BENCH_<date>.json via
# tools/benchjson. Each checked-in BENCH file is one point on the perf
# trajectory; the "speedups" section pairs every */serial with its
# */parallel sibling on the hardware the script ran on.
#
# Usage:
#   scripts/bench.sh                 run suite, write BENCH_<today>.json
#   BENCH_DATE=2026-08-06 scripts/bench.sh   pin the date stamp
#   BENCH_PATTERN='Hot' scripts/bench.sh     restrict which benchmarks run
set -euo pipefail
cd "$(dirname "$0")/.."

date=${BENCH_DATE:-$(date +%Y-%m-%d)}
pattern=${BENCH_PATTERN:-'Hot|Fig5|FWHT|E5WirePack'}
out="BENCH_${date}.json"
raw=$(mktemp /tmp/trimgrad-bench.XXXXXX.txt)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench '$pattern' (benchmem, 3x)"
go test -run '^$' -bench "$pattern" -benchmem -count=1 -benchtime 3x . | tee "$raw"

echo "== benchjson -> $out"
go run ./tools/benchjson -date "$date" -o "$out" < "$raw"
echo "wrote $out"
