#!/usr/bin/env bash
# bench.sh — trimgrad's benchmark-trajectory harness.
#
# Runs the hot-path benchmark suite (the BenchmarkHot* family in
# bench_test.go: encode+decode round, matmul kernels, ml epoch — each
# with serial and parallel variants) plus the per-figure micro
# benchmarks, the fabric fast-path suite (including the k=4 fat-tree
# incast), and the collective-zoo all-reduce suite, and converts the
# output into BENCH_<date>.json via
# tools/benchjson. Each checked-in BENCH file is one point on the perf
# trajectory; the "speedups" section pairs every */serial with its
# */parallel sibling on the hardware the script ran on.
#
# Usage:
#   scripts/bench.sh                 run suite, write BENCH_<today>.json
#   BENCH_DATE=2026-08-06 scripts/bench.sh   pin the date stamp
#   BENCH_PATTERN='Hot' scripts/bench.sh     restrict which benchmarks run
#   BENCH_TIME=20x scripts/bench.sh          more iterations (noisy hosts)
set -euo pipefail
cd "$(dirname "$0")/.."

date=${BENCH_DATE:-$(date +%Y-%m-%d)}
pattern=${BENCH_PATTERN:-'Hot|Fig5|FWHT|E5WirePack|Fabric|Collective|Shard|Arena'}
benchtime=${BENCH_TIME:-3x}
out="BENCH_${date}.json"
# Same-day rerun: auto-suffix b, c, … instead of clobbering (or requiring
# a manual rename). Suffixes sort after the bare date ('.' < 'b'), so the
# plain `ls | sort` below — and benchjson -diff's notion of "previous" —
# always picks the latest run of a day.
if [[ -e "$out" ]]; then
  for s in b c d e f g h i j k l m n o p q r s t u v w x y z; do
    candidate="BENCH_${date}${s}.json"
    [[ -e "$candidate" ]] && continue
    out="$candidate"
    break
  done
  if [[ -e "$out" ]]; then
    echo "bench.sh: every same-day suffix for $date is taken; pass BENCH_DATE to pick another stamp" >&2
    exit 1
  fi
  echo "note: BENCH_${date}.json exists; writing $out"
fi
raw=$(mktemp /tmp/trimgrad-bench.XXXXXX.txt)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench '$pattern' (benchmem, $benchtime)"
go test -run '^$' -bench "$pattern" -benchmem -count=1 -benchtime "$benchtime" . | tee "$raw"

echo "== benchjson -> $out"
go run ./tools/benchjson -date "$date" -o "$out" < "$raw"
echo "wrote $out"

# Trajectory check: diff against the most recent previous BENCH file.
# Informational only — single-run numbers are noisy, so a regression here
# warns but never fails the script; re-run or investigate before trusting.
prev=$(ls BENCH_*.json 2>/dev/null | grep -vF "$out" | sort | tail -n 1 || true)
if [[ -n "$prev" ]]; then
  echo "== benchjson -diff $prev $out (informational)"
  go run ./tools/benchjson -diff "$prev" "$out" || true
fi
