// Command trainsim runs one distributed-training simulation: choose the
// encoding scheme, trim/drop rate, worker count and epochs, and get the
// per-epoch accuracy trajectory against simulated wall-clock time.
//
// Examples:
//
//	trainsim -scheme rht -trim 0.5 -epochs 12
//	trainsim -scheme baseline -drop 0.01
//	trainsim -scheme sq -trim 0.1 -workers 4 -record trims.json
//	trainsim -scheme sq -trim 0.1 -workers 4 -replay trims.json
package main

import (
	"flag"
	"fmt"
	"os"

	"trimgrad/internal/core"
	"trimgrad/internal/ddp"
	"trimgrad/internal/ml"
	"trimgrad/internal/obs"
	"trimgrad/internal/prof"
	"trimgrad/internal/quant"
)

func main() {
	var (
		scheme   = flag.String("scheme", "rht", "encoding: baseline|sign|sq|sd|rht|linear|rht-linear")
		headBits = flag.Int("p", 1, "head bits per coordinate (linear/rht-linear)")
		trim     = flag.Float64("trim", 0, "per-packet trim probability")
		drop     = flag.Float64("drop", 0, "per-packet drop probability (baseline)")
		workers  = flag.Int("workers", 2, "data-parallel workers")
		epochs   = flag.Int("epochs", 12, "training epochs")
		lr       = flag.Float64("lr", 0.07, "learning rate")
		seed     = flag.Uint64("seed", 1, "run seed")
		record   = flag.String("record", "", "record the trim transcript to this file (§5.4)")
		replay   = flag.String("replay", "", "replay a recorded trim transcript (§5.4)")
		hard     = flag.Bool("hard", true, "use the hard 100-class benchmark task")
		metrics  = flag.String("metrics", "", "export per-round telemetry (ddp.round.* spans, codec counters) as JSONL to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(1)
	}
	defer stopProf()

	dcfg := ml.SyntheticConfig{
		Classes: 100, Dim: 64, Train: 8000, Test: 2000,
		Noise: 12.8, Spread: 8.0, Seed: 42,
	}
	if !*hard {
		dcfg = ml.SyntheticConfig{
			Classes: 20, Dim: 32, Train: 3000, Test: 800,
			Noise: 0.5, Spread: 1.0, Seed: 42,
		}
	}
	train, test := ml.Synthetic(dcfg)

	cfg := ddp.Config{
		Workers:  *workers,
		TrimRate: *trim,
		DropRate: *drop,
		Epochs:   *epochs,
		LR:       *lr,
		Seed:     *seed,
		RowSize:  1 << 15,
	}
	if *scheme != "baseline" {
		s, err := quant.ParseScheme(*scheme)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(2)
		}
		cfg.Scheme = &quant.Params{Scheme: s, P: *headBits}
	}

	var recorder *core.Recorder
	switch {
	case *record != "" && *replay != "":
		fmt.Fprintln(os.Stderr, "trainsim: -record and -replay are mutually exclusive")
		os.Exit(2)
	case *record != "":
		recorder = core.NewRecorder(core.NewTrimmer(*trim, *seed+0x7717))
		cfg.Injector = recorder
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(1)
		}
		transcript, err := core.LoadTranscript(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(1)
		}
		cfg.Injector = core.NewPlayer(transcript)
	}

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.New()
	}
	tr, err := ddp.NewTrainer(train, test,
		ddp.WithConfig(cfg), ddp.WithHidden(128), ddp.WithRegistry(reg))
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(1)
	}
	res, err := tr.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(1)
	}

	fmt.Printf("epoch  wall_s   loss    top1    top5    trim_frac\n")
	for _, p := range res.Points {
		fmt.Printf("%5d  %7.1f  %6.3f  %.4f  %.4f  %.4f\n",
			p.Epoch, p.Wall, p.Loss, p.Top1, p.Top5, p.TrimFrac)
	}
	fmt.Println(res)

	if recorder != nil {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := recorder.Transcript.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d packet fates to %s\n",
			len(recorder.Transcript.Events), *record)
	}

	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := obs.WriteJSONL(f, reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(1)
		}
	}
}
