package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"trimgrad/internal/analysis"
)

// The lint cache keeps scripts/check.sh wall time flat now that trimlint
// carries an interprocedural pass: a run over an unchanged tree replays
// its stored diagnostics instead of re-type-checking the module. The key
// is a content hash over every non-test Go source file in the module
// (the same file set LoadModule can see), go.mod, the flag set, and a
// version string bumped whenever the analysis engine changes shape.
// Entries live under <module>/.trimlint-cache, which is gitignored.

// cacheVersion invalidates all prior entries when the engine or the
// diagnostic schema changes.
const cacheVersion = "trimlint-cache-v1"

const cacheDirName = ".trimlint-cache"

// maxCacheEntries bounds the directory; oldest entries are evicted.
const maxCacheEntries = 32

type lintCache struct {
	dir string
	key string
}

// openCache hashes the module's lint inputs and returns a handle to the
// entry for this exact tree + flag combination.
func openCache(root string, patterns []string, enable, disable string) (*lintCache, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", cacheVersion)
	sorted := append([]string(nil), patterns...)
	sort.Strings(sorted)
	fmt.Fprintf(h, "patterns=%s\nenable=%s\ndisable=%s\n", strings.Join(sorted, ","), enable, disable)

	files, err := lintInputs(root)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		fmt.Fprintf(h, "file=%s\n", f)
		src, err := os.Open(f)
		if err != nil {
			return nil, err
		}
		_, err = io.Copy(h, src)
		src.Close()
		if err != nil {
			return nil, err
		}
	}
	return &lintCache{
		dir: filepath.Join(root, cacheDirName),
		key: hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// lintInputs lists go.mod plus every non-test Go source file the loader
// can see, sorted, so the hash is deterministic.
func lintInputs(root string) ([]string, error) {
	files := []string{filepath.Join(root, "go.mod")}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || name == "scripts" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// lookup returns the stored diagnostics for this key, if any.
func (c *lintCache) lookup() ([]analysis.Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, c.key+".json"))
	if err != nil {
		return nil, false
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, false // corrupt entry: fall through to a real run
	}
	return diags, true
}

// store writes the run's diagnostics under this key and evicts the oldest
// entries beyond the size bound. Cache writes are best-effort: failures
// never fail the lint.
func (c *lintCache) store(diags []analysis.Diagnostic) {
	if diags == nil {
		diags = []analysis.Diagnostic{}
	}
	data, err := json.Marshal(diags)
	if err != nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp := filepath.Join(c.dir, c.key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, c.key+".json")); err != nil {
		os.Remove(tmp)
		return
	}
	c.evict()
}

// evict removes the oldest entries beyond maxCacheEntries.
func (c *lintCache) evict() {
	ents, err := os.ReadDir(c.dir)
	if err != nil || len(ents) <= maxCacheEntries {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	var entries []aged
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		entries = append(entries, aged{name: e.Name(), mod: info.ModTime().UnixNano()})
	}
	if len(entries) <= maxCacheEntries {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mod < entries[j].mod })
	for _, e := range entries[:len(entries)-maxCacheEntries] {
		os.Remove(filepath.Join(c.dir, e.name))
	}
}
