// Command trimlint runs trimgrad's static-analysis suite over the module.
//
// Usage:
//
//	go run ./cmd/trimlint [flags] [packages]
//
// Packages use go-tool patterns relative to the module root ("./...",
// "./internal/core", "./cmd/..."); the default is "./...". trimlint exits
// 0 when the tree is clean, 1 when it has findings, and 2 when it cannot
// load or type-check the code.
//
// Flags:
//
//	-json            emit findings as a SARIF 2.1.0 document instead of text
//	-enable  a,b,c   run only the named checks
//	-disable a,b,c   run all checks except the named ones
//	-list            print the available checks and exit
//	-nocache         ignore and do not update the lint cache
//
// Checks (see -list for one-line docs):
//
//	determinism        wall-clock/rand/map-order bans in deterministic packages
//	swallowed-error    discarded error values
//	float-equality     exact ==/!= on computed floats
//	wire-endianness    single-endianness wire codec
//	locked-value-copy  mutex-holding values passed by copy
//	wallclock          wall-clock reads outside sanctioned packages
//	poolownership      pooled packets/arena buffers/par scratch reach exactly
//	                   one release on every path
//	goroutinebound     go statements outside internal/par need a provable join
//	obshotpath         obs registry lookups stay out of event-dispatch paths
//
// Results are cached under <module>/.trimlint-cache keyed by a content
// hash of every non-test source file plus the flag set, so an unchanged
// tree re-lints in milliseconds; -nocache bypasses it.
//
// Findings are suppressed line-by-line with
//
//	//trimlint:allow <check> <one-line justification>
//
// which covers the directive's own line and the line below it. The
// poolownership checker additionally honors
//
//	//trimlint:owner transfer <one-line justification>
//
// marking a deliberate ownership hand-off (store into a long-lived
// structure) as a transfer rather than an escape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"trimgrad/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a SARIF document")
	enable := flag.String("enable", "", "comma-separated checks to run (default: all)")
	disable := flag.String("disable", "", "comma-separated checks to skip")
	list := flag.Bool("list", false, "list available checks and exit")
	noCache := flag.Bool("nocache", false, "ignore and do not update the lint cache")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trimlint:", err)
		os.Exit(2)
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var cache *lintCache
	if !*noCache {
		if c, err := openCache(root, patterns, *enable, *disable); err == nil {
			cache = c
			if diags, ok := cache.lookup(); ok {
				emit(root, diags, *jsonOut)
				return
			}
		}
		// A cache that cannot be opened or read is simply skipped: the
		// lint result must never depend on cache health.
	}

	pkgs, err := analysis.LoadModule(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not look like a clean run.
		fmt.Fprintf(os.Stderr, "trimlint: no packages match %s\n", strings.Join(patterns, " "))
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, analyzers)
	if cache != nil {
		cache.store(diags)
	}
	emit(root, diags, *jsonOut)
}

// emit prints the findings in the selected format and exits non-zero when
// there are any.
func emit(root string, diags []analysis.Diagnostic, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.ToSarif(root, diags)); err != nil {
			fmt.Fprintln(os.Stderr, "trimlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "trimlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// selectAnalyzers applies the -enable/-disable flags to the registry.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	all := analysis.Analyzers()
	if enable != "" {
		var out []*analysis.Analyzer
		for _, name := range strings.Split(enable, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				return nil, fmt.Errorf("unknown check %q (see -list)", name)
			}
			out = append(out, a)
		}
		return out, nil
	}
	if disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(name) == nil {
				return nil, fmt.Errorf("unknown check %q (see -list)", name)
			}
			skip[name] = true
		}
		var out []*analysis.Analyzer
		for _, a := range all {
			if !skip[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	}
	return all, nil
}
