// Command trimbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	trimbench -list
//	trimbench -exp fig3 [-quick] [-csv] [-seed N]
//	trimbench -exp all
//
// Each experiment prints the rows/series of one figure or quantitative
// claim; the mapping to the paper is documented in DESIGN.md (E1–E11) and
// the recorded outputs in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"trimgrad/internal/exp"
	"trimgrad/internal/obs"
	"trimgrad/internal/prof"
)

func main() {
	var (
		name    = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		quick   = flag.Bool("quick", false, "shrink datasets/epochs for a fast smoke run")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed    = flag.Uint64("seed", 0, "experiment seed offset")
		metrics = flag.String("metrics", "", "export collected telemetry as JSONL to this file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trimbench:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *list || *name == "" {
		fmt.Println("available experiments:")
		for _, r := range exp.Experiments() {
			fmt.Printf("  %-16s %s\n", r.Name, r.Desc)
		}
		if *name == "" && !*list {
			os.Exit(2)
		}
		return
	}

	o := exp.Options{Quick: *quick, CSV: *csv, Seed: *seed}
	if *metrics != "" {
		o.Obs = obs.New()
	}
	run := func(r exp.Runner) {
		fmt.Printf("# %s — %s\n\n", r.Name, r.Desc)
		if err := r.Run(os.Stdout, o); err != nil {
			fmt.Fprintf(os.Stderr, "trimbench: %s: %v\n", r.Name, err)
			os.Exit(1)
		}
	}
	if *name == "all" {
		for _, r := range exp.Experiments() {
			run(r)
		}
	} else {
		r, ok := exp.Lookup(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "trimbench: unknown experiment %q (try -list)\n", *name)
			os.Exit(2)
		}
		run(r)
	}

	if *metrics != "" {
		if err := exportMetrics(*metrics, o.Obs); err != nil {
			fmt.Fprintln(os.Stderr, "trimbench:", err)
			os.Exit(1)
		}
	}
}

// exportMetrics writes the registry's snapshot as JSONL.
func exportMetrics(path string, r *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteJSONL(f, r.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
