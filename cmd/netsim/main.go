// Command netsim runs a standalone network simulation of gradient traffic
// through a congested fabric and prints flow-completion and per-tier
// queue statistics — the motivation experiments of §1–§2.
//
// Examples:
//
//	netsim -topo star -senders 8 -mode trim
//	netsim -topo star -senders 8 -mode trim -agg
//	netsim -topo dumbbell -senders 4 -mode drop -cross 5e5
//	netsim -topo fattree -k 4 -workload incast
//	netsim -topo leafspine -leaves 4 -spines 2 -oversub 4 -workload permutation
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"

	"trimgrad/internal/core"
	"trimgrad/internal/netsim"
	"trimgrad/internal/obs"
	"trimgrad/internal/quant"
	"trimgrad/internal/transport"
	"trimgrad/internal/wire"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netsim:", err)
	os.Exit(1)
}

// buildTopology constructs the -topo fabric. Star/dumbbell/ring size from
// -senders (plus one receiver host); fattree sizes from -k; leafspine
// from -leaves/-spines/-hostsperleaf and thins its uplinks by -oversub.
func buildTopology(sim *netsim.Sim, kind string, senders, k, leaves, spines, perLeaf int,
	oversub float64, link netsim.LinkConfig, q netsim.QueueConfig, seed uint64,
	reg *obs.Registry) (*netsim.Topology, error) {
	opt := netsim.WithRegistry(reg)
	switch kind {
	case "star":
		return netsim.NewStar(sim, senders+1, link, q, opt), nil
	case "dumbbell":
		return netsim.NewDumbbell(sim, senders, 1, link, link, q, opt), nil
	case "ring":
		return netsim.NewRing(sim, senders+1, link, link, q, opt), nil
	case "fattree":
		return netsim.NewFatTree(sim, netsim.FatTreeConfig{
			K: k, HostLink: link, Queue: q, ECMPSeed: seed,
		}, opt)
	case "leafspine":
		return netsim.NewLeafSpine(sim, netsim.LeafSpineConfig{
			Leaves: leaves, Spines: spines, HostsPerLeaf: perLeaf,
			HostLink: link, Oversub: oversub, Queue: q, ECMPSeed: seed,
		}, opt)
	}
	return nil, fmt.Errorf("unknown topology %q", kind)
}

func main() {
	var topo string
	flag.StringVar(&topo, "topo", "star", "topology: star|dumbbell|ring|fattree|leafspine")
	flag.StringVar(&topo, "topology", "star", "alias for -topo")
	var (
		workload = flag.String("workload", "incast", "gradient traffic pattern: incast[:fan]|alltoall|permutation")
		senders  = flag.Int("senders", 8, "gradient senders (star/dumbbell/ring host count minus the receiver)")
		k        = flag.Int("k", 4, "fat-tree arity (fattree topology; k³/4 hosts)")
		leaves   = flag.Int("leaves", 4, "leaf switches (leafspine topology)")
		spines   = flag.Int("spines", 2, "spine switches (leafspine topology)")
		perLeaf  = flag.Int("hostsperleaf", 4, "hosts per leaf (leafspine topology)")
		oversub  = flag.Float64("oversub", 1, "leaf oversubscription ratio (leafspine topology)")
		mode     = flag.String("mode", "trim", "switch behaviour: trim|drop")
		agg      = flag.Bool("agg", false, "aggregate trimmable packets in the switches (senders share one message ID); needs -mode trim")
		dim      = flag.Int("dim", 1<<16, "gradient coordinates per sender")
		buffer   = flag.Int("buffer", 64<<10, "switch buffer bytes per port")
		gbps     = flag.Float64("gbps", 10, "link bandwidth in Gbit/s")
		cross    = flag.Float64("cross", 0, "legacy cross-traffic rate (packets/s) per gradient sender toward its receiver")
		mice     = flag.Float64("mice", 0, "background mouse-flow rate (packets/s per host; 200 B packets)")
		elephant = flag.Float64("elephants", 0, "background elephant-flow rate (packets/s per fourth host; 1500 B packets)")
		seed     = flag.Uint64("seed", 1, "seed")
		arena    = flag.Bool("arena", false, "recycle payload buffers through a generation-stamped wire arena (zero-alloc fast path; composes with -shards and fault injection)")
		shards   = flag.Int("shards", 0, "simulator shards (parallel partitions; 0 = min(GOMAXPROCS, rack switches)); results are bit-identical at every count")
		verbose  = flag.Bool("v", false, "print the shard partition map (shard → switches/hosts)")
		metrics  = flag.String("metrics", "", "export per-port/transport telemetry and flow spans as JSONL to this file")
	)
	flag.Parse()

	if _, err := netsim.ParseTopology(topo); err != nil {
		fail(err)
	}
	qcfg := netsim.QueueConfig{
		CapacityBytes:     *buffer,
		HighCapacityBytes: 8 * *buffer,
		Mode:              netsim.DropTail,
	}
	if *mode == "trim" {
		qcfg.Mode = netsim.TrimOverflow
	}
	if *agg {
		if *mode != "trim" {
			fmt.Fprintln(os.Stderr, "netsim: -agg requires -mode trim")
			os.Exit(2)
		}
		qcfg.AggregateTrimmable = true
	}
	link := netsim.LinkConfig{Bandwidth: netsim.Gbps(*gbps), Delay: 5 * netsim.Microsecond}

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.New()
	}
	sim := netsim.NewSim()
	t, err := buildTopology(sim, topo, *senders, *k, *leaves, *spines, *perLeaf,
		*oversub, link, qcfg, *seed, reg)
	if err != nil {
		fail(err)
	}
	// Partition the fabric across shards. 0 sizes to the machine, capped at
	// the rack count; an explicit oversized count is rejected by
	// ShardTopology with the rack arithmetic spelled out — never clamped.
	nRacks := len(t.Tiers[0].Switches)
	nShards := *shards
	if nShards == 0 {
		if nShards = runtime.GOMAXPROCS(0); nShards > nRacks {
			nShards = nRacks
		}
	}
	eng, err := netsim.ShardTopology(t, nShards)
	if err != nil {
		fail(err)
	}
	defer eng.Close()
	if *verbose {
		fmt.Printf("shards=%d lookahead=%v\n", eng.Shards(), eng.Window())
		for _, a := range eng.Partition() {
			fmt.Printf("shard %d: switches=%v hosts=%v\n", a.Shard, a.Switches, a.Hosts)
		}
	}

	nHosts := len(t.Hosts)
	w, err := netsim.ParseWorkload(*workload, nHosts, *seed)
	if err != nil {
		fail(err)
	}
	if *mice > 0 || *elephant > 0 {
		w = netsim.Merge(w.Name+"+bg", w,
			netsim.BackgroundMix(nHosts, *mice, *elephant, *seed))
	}
	flows := w.GradientFlows()

	// One transport stack per host that sends or receives gradients. With
	// -arena each sending host recycles its payload buffers through its own
	// generation-stamped arena (DESIGN.md §16) — legal at any -shards count
	// and under aliasing faults, with stale touches surfacing in the
	// per-tier stale counter below.
	stacks := make(map[int]*transport.Stack)
	arenas := make(map[int]*wire.Arena)
	stackFor := func(h int) *transport.Stack {
		if s, ok := stacks[h]; ok {
			return s
		}
		var opts []transport.Opt
		if *arena {
			arenas[h] = wire.NewArena()
			opts = append(opts, transport.WithArena(arenas[h]))
		}
		s, err := transport.New(t.Hosts[h], opts...)
		if err != nil {
			fail(err)
		}
		s.Receiver = transport.ReceiverFunc(func(netsim.NodeID, []byte) {})
		stacks[h] = s
		return s
	}

	fct := netsim.NewFCTRecorder()
	fct.Obs = reg
	// Completions fire on shard goroutines; the counter must be atomic.
	var completed atomic.Int64
	for i, f := range flows {
		src, dst := stackFor(f.Src), stackFor(f.Dst)
		_ = dst // created so the destination can reassemble
		encOpts := []core.Option{core.WithConfig(core.Config{
			Params: quant.Params{Scheme: quant.RHT}, RowSize: 1 << 13, Flow: uint32(i),
		})}
		if *arena {
			// The sender's encoder packs into the same arena its transport
			// recycles, closing the Get → send → Put loop per host.
			encOpts = append(encOpts, core.WithArena(arenas[f.Src]))
		}
		enc, err := core.NewEncoderWith(encOpts...)
		if err != nil {
			fail(err)
		}
		grad := make([]float32, *dim)
		for j := range grad {
			grad[j] = float32(j%17) * 0.01
		}
		// Under -agg every sender shares one message ID: matching
		// aggregation keys are what lets the switch fold the incast's
		// packets (flows stay distinct, so reassembly still works per
		// sender).
		msgID := uint32(i + 1)
		if *agg {
			msgID = 1
		}
		msg, err := enc.Encode(*seed, msgID, grad)
		if err != nil {
			fail(err)
		}
		id := uint64(i + 1)
		fct.FlowStarted(id, 0)
		onDone := func(at netsim.Time) { completed.Add(1); fct.FlowFinished(id, at) }
		dstID := t.Hosts[f.Dst].ID()
		if qcfg.Mode == netsim.TrimOverflow {
			src.SendTrimmable(dstID, msgID, msg.Meta, msg.Data, onDone, nil)
		} else {
			payloads := append(append([][]byte{}, msg.Meta...), msg.Data...)
			src.SendReliable(dstID, msgID, payloads, onDone, nil)
		}
		if *cross > 0 {
			ct := netsim.NewCrossTraffic(t.Hosts[f.Src], dstID, 1500, *cross, *seed+uint64(i))
			ct.Start()
		}
	}
	bg := w.StartBackground(t, *seed+17)
	// Run in slices and stop once every gradient flow lands: open-loop
	// background and cross traffic never drain the event queue, so a fixed
	// horizon would simulate long stretches of pure background.
	const slice = 10 * netsim.Millisecond
	for now := netsim.Time(0); completed.Load() < int64(len(flows)) && now < 60*netsim.Second; now += slice {
		eng.RunUntil(now + slice)
	}
	for _, ct := range bg {
		ct.Stop()
	}

	retrans := 0
	for _, s := range stacks {
		retrans += s.Stats.Retransmits
	}
	trimmedRx := 0
	for _, s := range stacks {
		trimmedRx += s.Stats.TrimmedReceived
	}

	fmt.Printf("topology=%s workload=%s mode=%s agg=%v hosts=%d flows=%d dim=%d buffer=%dB\n",
		t.Kind, w.Name, *mode, *agg, nHosts, len(flows), *dim, *buffer)
	fmt.Printf("completed           %d/%d\n", completed.Load(), len(flows))
	fmt.Printf("FCT p50 / p99 / max %v / %v / %v\n",
		fct.Percentile(0.5), fct.Percentile(0.99), fct.Max())
	fmt.Printf("retransmits         %d\n", retrans)
	fmt.Printf("trimmed received    %d\n", trimmedRx)
	for _, tier := range t.Tiers {
		var st netsim.PortStats
		maxQ := 0
		for _, sw := range tier.Switches {
			for _, p := range sw.Ports() {
				st.Enqueued += p.Stats.Enqueued
				st.Transmitted += p.Stats.Transmitted
				st.Trimmed += p.Stats.Trimmed
				st.Dropped += p.Stats.Dropped
				st.Aggregated += p.Stats.Aggregated
				st.StaleDrops += p.Stats.StaleDrops
				if p.Stats.MaxQueueBytes > maxQ {
					maxQ = p.Stats.MaxQueueBytes
				}
			}
		}
		fmt.Printf("tier %-6s (%2d sw) enq=%d tx=%d trim=%d drop=%d agg=%d stale=%d maxQ=%dB\n",
			tier.Name, len(tier.Switches), st.Enqueued, st.Transmitted,
			st.Trimmed, st.Dropped, st.Aggregated, st.StaleDrops, maxQ)
	}

	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		// The engine merges the pre-partition registry with every shard's
		// into one canonical snapshot — byte-identical at any -shards value.
		if err := obs.WriteJSONL(f, eng.Snapshot()); err != nil {
			fail(err)
		}
	}
}
