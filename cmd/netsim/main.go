// Command netsim runs a standalone network simulation of gradient traffic
// through a congested fabric and prints flow-completion and queue
// statistics — the motivation experiments of §1–§2.
//
// Examples:
//
//	netsim -topology star -senders 8 -mode trim
//	netsim -topology star -senders 8 -mode trim -agg
//	netsim -topology dumbbell -senders 4 -mode drop -cross 5e5
package main

import (
	"flag"
	"fmt"
	"os"

	"trimgrad/internal/core"
	"trimgrad/internal/netsim"
	"trimgrad/internal/obs"
	"trimgrad/internal/quant"
	"trimgrad/internal/transport"
)

func main() {
	var (
		topology = flag.String("topology", "star", "star|dumbbell")
		senders  = flag.Int("senders", 8, "number of gradient senders")
		mode     = flag.String("mode", "trim", "switch behaviour: trim|drop")
		agg      = flag.Bool("agg", false, "aggregate trimmable packets in the switch (senders share one message ID); needs -mode trim")
		dim      = flag.Int("dim", 1<<16, "gradient coordinates per sender")
		buffer   = flag.Int("buffer", 64<<10, "switch buffer bytes per port")
		gbps     = flag.Float64("gbps", 10, "link bandwidth in Gbit/s")
		cross    = flag.Float64("cross", 0, "cross-traffic rate (packets/s) per sender host")
		seed     = flag.Uint64("seed", 1, "seed")
		metrics  = flag.String("metrics", "", "export per-port/transport telemetry and flow spans as JSONL to this file")
	)
	flag.Parse()

	qcfg := netsim.QueueConfig{
		CapacityBytes:     *buffer,
		HighCapacityBytes: 8 * *buffer,
		Mode:              netsim.DropTail,
	}
	if *mode == "trim" {
		qcfg.Mode = netsim.TrimOverflow
	}
	if *agg {
		if *mode != "trim" {
			fmt.Fprintln(os.Stderr, "netsim: -agg requires -mode trim")
			os.Exit(2)
		}
		qcfg.AggregateTrimmable = true
	}
	link := netsim.LinkConfig{Bandwidth: netsim.Gbps(*gbps), Delay: 5 * netsim.Microsecond}

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.New()
	}
	sim := netsim.NewSim()
	var hosts []*netsim.Host
	var receiver *netsim.Host
	var bottleneck *netsim.Port
	switch *topology {
	case "star":
		star := netsim.BuildStar(sim, *senders+1, link, qcfg, netsim.WithRegistry(reg))
		hosts = star.Hosts[:*senders]
		receiver = star.Hosts[*senders]
		bottleneck = star.Switch.Port(receiver.ID())
	case "dumbbell":
		d := netsim.BuildDumbbell(sim, *senders, 1, link, link, qcfg, netsim.WithRegistry(reg))
		hosts = d.LeftHosts
		receiver = d.RightHosts[0]
		bottleneck = d.Left.Port(d.Right.ID())
	default:
		fmt.Fprintf(os.Stderr, "netsim: unknown topology %q\n", *topology)
		os.Exit(2)
	}

	rx, err := transport.New(receiver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
	rx.Receiver = transport.ReceiverFunc(func(netsim.NodeID, []byte) {})

	fct := netsim.NewFCTRecorder()
	fct.Obs = reg
	completed := 0
	var stacks []*transport.Stack
	for i, h := range hosts {
		s, err := transport.New(h)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		stacks = append(stacks, s)
		enc, err := core.NewEncoder(core.Config{
			Params: quant.Params{Scheme: quant.RHT}, RowSize: 1 << 13, Flow: uint32(i),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		grad := make([]float32, *dim)
		for j := range grad {
			grad[j] = float32(j%17) * 0.01
		}
		// Under -agg every sender shares one message ID: matching
		// aggregation keys are what lets the switch fold the incast's
		// packets (flows stay distinct, so reassembly still works per
		// sender).
		msgID := uint32(i + 1)
		if *agg {
			msgID = 1
		}
		msg, err := enc.Encode(*seed, msgID, grad)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		id := uint64(i + 1)
		fct.FlowStarted(id, 0)
		onDone := func(at netsim.Time) { completed++; fct.FlowFinished(id, at) }
		if qcfg.Mode == netsim.TrimOverflow {
			s.SendTrimmable(receiver.ID(), msgID, msg.Meta, msg.Data, onDone, nil)
		} else {
			payloads := append(append([][]byte{}, msg.Meta...), msg.Data...)
			s.SendReliable(receiver.ID(), msgID, payloads, onDone, nil)
		}
		if *cross > 0 {
			ct := netsim.NewCrossTraffic(h, receiver.ID(), 1500, *cross, *seed+uint64(i))
			ct.Start()
		}
	}
	sim.RunUntil(60 * netsim.Second)

	retrans, trimmedRx := 0, 0
	for _, s := range stacks {
		retrans += s.Stats.Retransmits
	}
	trimmedRx = rx.Stats.TrimmedReceived

	fmt.Printf("topology=%s mode=%s agg=%v senders=%d dim=%d buffer=%dB\n",
		*topology, *mode, *agg, *senders, *dim, *buffer)
	fmt.Printf("completed           %d/%d\n", completed, *senders)
	fmt.Printf("FCT p50 / p99 / max %v / %v / %v\n",
		fct.Percentile(0.5), fct.Percentile(0.99), fct.Max())
	fmt.Printf("retransmits         %d\n", retrans)
	fmt.Printf("trimmed received    %d\n", trimmedRx)
	if bottleneck != nil {
		st := bottleneck.Stats
		fmt.Printf("bottleneck port     enq=%d tx=%d trim=%d drop=%d agg=%d maxQ=%dB\n",
			st.Enqueued, st.Transmitted, st.Trimmed, st.Dropped, st.Aggregated,
			st.MaxQueueBytes)
	}

	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := obs.WriteJSONL(f, reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
	}
}
