// Command trimwire inspects and manipulates trimgrad wire-format packets:
// it parses headers, verifies checksums, applies the switch-side trim
// operation, and hex-dumps regions. With no input file it generates a
// demo packet so the format can be explored immediately.
//
// Examples:
//
//	trimwire -demo                     # build, show, trim a demo packet
//	trimwire -in pkt.bin               # inspect a captured packet
//	trimwire -in pkt.bin -trim 87 -out trimmed.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"trimgrad/internal/quant"
	"trimgrad/internal/wire"
	"trimgrad/internal/xrand"
)

func main() {
	var (
		in     = flag.String("in", "", "packet file to inspect (raw wire bytes)")
		out    = flag.String("out", "", "write the (possibly trimmed) packet here")
		trimTo = flag.Int("trim", -1, "apply switch-side Trim to this byte target")
		demo   = flag.Bool("demo", false, "generate and inspect a demo packet")
		hex    = flag.Bool("hex", false, "hex-dump the packet regions")
	)
	flag.Parse()

	var buf []byte
	switch {
	case *in != "":
		b, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		buf = b
	case *demo || *in == "":
		buf = demoPacket()
		fmt.Println("(no -in given: inspecting a generated demo packet)")
	}

	if *trimTo >= 0 {
		before := len(buf)
		buf = wire.Trim(buf, *trimTo)
		fmt.Printf("Trim(%d): %d -> %d bytes\n\n", *trimTo, before, len(buf))
	}

	inspect(buf, *hex)

	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d bytes to %s\n", len(buf), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trimwire:", err)
	os.Exit(1)
}

func demoPacket() []byte {
	r := xrand.New(42)
	row := make([]float32, 354)
	for i := range row {
		row[i] = float32(r.NormFloat64() * 0.05)
	}
	c := quant.MustNew(quant.Params{Scheme: quant.RHT})
	padded := make([]float32, 512)
	copy(padded, row)
	enc, err := c.Encode(padded, 7)
	if err != nil {
		fatal(err)
	}
	_, data, err := wire.PackRow(1, 2, 0, enc)
	if err != nil {
		fatal(err)
	}
	return data[0]
}

func inspect(buf []byte, hexDump bool) {
	h, err := wire.ParseHeader(buf)
	if err != nil {
		fmt.Printf("not a trimgrad packet: %v\n", err)
		return
	}
	kind := "data"
	switch {
	case h.IsMeta():
		kind = "metadata"
	case h.IsNaive():
		kind = "naive (whole floats)"
	}
	fmt.Printf("kind      %s\n", kind)
	fmt.Printf("flags     trimmed=%v\n", h.Trimmed())
	fmt.Printf("flow      %d\n", h.Flow)
	fmt.Printf("message   %d  row %d  start %d  count %d\n", h.Message, h.Row, h.Start, h.Count)
	fmt.Printf("geometry  P=%d head bits, Q=%d tail bits per coordinate\n", h.P, h.Q)
	fmt.Printf("seed      %#x\n", h.Seed)
	fmt.Printf("size      %d bytes on wire (+%d network overhead)\n", len(buf), wire.NetOverhead)

	switch {
	case h.IsMeta():
		m, err := wire.ParseMetaPacket(buf)
		if err != nil {
			fmt.Printf("metadata  INVALID: %v\n", err)
			return
		}
		fmt.Printf("metadata  scheme=%v N=%d scale=%g\n", quant.Scheme(m.Scheme), m.N, m.Scale)
	case h.IsNaive():
		p, err := wire.ParseNaivePacket(buf)
		if err != nil {
			fmt.Printf("payload   INVALID: %v\n", err)
			return
		}
		fmt.Printf("payload   %d/%d whole floats survive\n", p.ValueCount, p.Count)
	default:
		p, err := wire.ParseDataPacket(buf)
		if err != nil {
			fmt.Printf("payload   INVALID: %v\n", err)
			return
		}
		fmt.Printf("payload   heads complete (%d), tails %d/%d (%s)\n",
			len(p.Heads), p.TailCount, p.Count,
			map[bool]string{true: "trimmed", false: "intact"}[p.TailCount < int(p.Count)])
		fmt.Printf("regions   header[0:%d) heads[%d:%d) tails[%d:%d)\n",
			wire.HeaderSize, wire.HeaderSize, wire.HeaderSize+h.HeadBytes(),
			wire.HeaderSize+h.HeadBytes(), h.FullSize())
		fmt.Printf("trim      boundary at %d bytes → %.1f%% compression\n",
			h.TrimmedSize(),
			100*(1-float64(h.TrimmedSize()+wire.NetOverhead)/float64(h.FullSize()+wire.NetOverhead)))
	}

	if hexDump {
		fmt.Println()
		dump(buf)
	}
}

func dump(buf []byte) {
	for off := 0; off < len(buf); off += 16 {
		end := off + 16
		if end > len(buf) {
			end = len(buf)
		}
		fmt.Printf("%06x  ", off)
		for i := off; i < end; i++ {
			fmt.Printf("%02x ", buf[i])
		}
		fmt.Println()
		if off >= 256 {
			fmt.Printf("... (%d more bytes)\n", len(buf)-end)
			return
		}
	}
}
